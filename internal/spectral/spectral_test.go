package spectral

import (
	"math"
	"sort"
	"testing"

	"elites/internal/graph"
	"elites/internal/linalg"
	"elites/internal/mathx"
)

func denseLaplacian(g *graph.Digraph) *linalg.Matrix {
	und := g.Undirected()
	n := und.NumNodes()
	m := linalg.NewMatrix(n, n)
	for u := 0; u < n; u++ {
		m.Set(u, u, float64(und.OutDegree(u)))
		for _, v := range und.OutNeighbors(u) {
			m.Set(u, int(v), -1)
		}
	}
	return m
}

func randomDigraph(rng *mathx.RNG, n int, p float64) *graph.Digraph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Bool(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestLaplacianOperatorMatchesDense(t *testing.T) {
	rng := mathx.NewRNG(1)
	g := randomDigraph(rng, 25, 0.1)
	op := NewLaplacianOperator(g)
	dense := denseLaplacian(g)
	x := make([]float64, op.Dim())
	for i := range x {
		x[i] = rng.Normal()
	}
	got := make([]float64, op.Dim())
	op.Apply(got, x)
	want := dense.MulVec(x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("Laplacian apply mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAdjacencyOperatorRowSums(t *testing.T) {
	rng := mathx.NewRNG(2)
	g := randomDigraph(rng, 20, 0.15)
	op := NewAdjacencyOperator(g)
	ones := make([]float64, op.Dim())
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, op.Dim())
	op.Apply(out, ones)
	und := g.Undirected()
	for u := range out {
		if math.Abs(out[u]-float64(und.OutDegree(u))) > 1e-12 {
			t.Fatalf("adjacency row sum at %d: %v vs degree %d", u, out[u], und.OutDegree(u))
		}
	}
}

func TestLanczosAgainstJacobi(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		g := randomDigraph(rng, 30, 0.12)
		dense := denseLaplacian(g)
		want, _, err := linalg.JacobiEigen(dense)
		if err != nil {
			t.Fatal(err)
		}
		op := NewLaplacianOperator(g)
		k := 5
		got, err := TopEigenvaluesLanczos(op, k, 30, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < k {
			t.Fatalf("got %d eigenvalues, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d λ[%d] = %v, want %v (all got %v want %v)",
					trial, i, got[i], want[i], got[:k], want[:k])
			}
		}
	}
}

func TestLanczosStarGraph(t *testing.T) {
	// Undirected star with d leaves: Laplacian eigenvalues are d+1 (once),
	// 1 (d-1 times), 0.
	d := 12
	b := graph.NewBuilder(d + 1)
	for i := 1; i <= d; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	rng := mathx.NewRNG(4)
	op := NewLaplacianOperator(g)
	got, err := TopEigenvaluesLanczos(op, 3, d+1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-float64(d+1)) > 1e-8 {
		t.Fatalf("star λ_max = %v, want %d", got[0], d+1)
	}
	if math.Abs(got[1]-1) > 1e-8 {
		t.Fatalf("star λ_2 = %v, want 1", got[1])
	}
}

func TestPowerIterationAgainstLanczos(t *testing.T) {
	rng := mathx.NewRNG(5)
	g := randomDigraph(rng, 40, 0.1)
	op := NewLaplacianOperator(g)
	k := 4
	lz, err := TopEigenvaluesLanczos(op, k, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := TopEigenvaluesPower(op, k, 2000, 1e-12, rng)
	if err != nil {
		t.Fatal(err)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pw)))
	for i := 0; i < k; i++ {
		if math.Abs(lz[i]-pw[i]) > 1e-3*(1+lz[i]) {
			t.Fatalf("λ[%d]: Lanczos %v vs power %v", i, lz[i], pw[i])
		}
	}
}

func TestLaplacianEigenvaluesNonNegative(t *testing.T) {
	rng := mathx.NewRNG(6)
	g := randomDigraph(rng, 50, 0.05)
	op := NewLaplacianOperator(g)
	evs, err := TopEigenvaluesLanczos(op, 10, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev < -1e-8 {
			t.Fatalf("negative Laplacian eigenvalue: %v", ev)
		}
	}
	// λ_max ∈ [maxDeg+1, 2·maxDeg] for graphs with at least one edge.
	maxDeg := op.MaxDegree()
	if evs[0] < maxDeg+1-1e-6 || evs[0] > 2*maxDeg+1e-6 {
		t.Fatalf("λ_max = %v outside [%v, %v]", evs[0], maxDeg+1, 2*maxDeg)
	}
}

func TestEigSolverEdgeCases(t *testing.T) {
	rng := mathx.NewRNG(7)
	empty := graph.NewBuilder(0).Build()
	if evs, err := TopEigenvaluesLanczos(NewLaplacianOperator(empty), 3, 10, rng); err != nil || evs != nil {
		t.Fatalf("empty graph: %v %v", evs, err)
	}
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	if _, err := TopEigenvaluesLanczos(NewLaplacianOperator(g), 0, 10, rng); err != ErrBadParam {
		t.Fatal("k=0 should be rejected")
	}
	// k > n clamps.
	evs, err := TopEigenvaluesLanczos(NewLaplacianOperator(g), 10, 10, rng)
	if err != nil || len(evs) > 3 {
		t.Fatalf("clamp failed: %v %v", evs, err)
	}
	if _, err := TopEigenvaluesPower(NewLaplacianOperator(g), -1, 10, 0, rng); err != ErrBadParam {
		t.Fatal("power k<0 should be rejected")
	}
}

func TestDenseOperator(t *testing.T) {
	m := linalg.NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 7)
	op := &DenseOperator{M: m}
	rng := mathx.NewRNG(8)
	evs, err := TopEigenvaluesLanczos(op, 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evs[0]-7) > 1e-9 || math.Abs(evs[1]-2) > 1e-9 {
		t.Fatalf("dense eigs = %v", evs)
	}
}

func TestLanczosDisconnectedGraph(t *testing.T) {
	// Two disjoint triangles: Laplacian spectrum {3,3,3,3,0,0}; the
	// invariant-subspace restart must find eigenvalues across components.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	})
	rng := mathx.NewRNG(9)
	evs, err := TopEigenvaluesLanczos(NewLaplacianOperator(g), 4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(evs[i]-3) > 1e-7 {
			t.Fatalf("disconnected spectrum = %v, want four 3s", evs)
		}
	}
}
