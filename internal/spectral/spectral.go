// Package spectral computes extremal eigenvalues of graph matrices without
// materializing them. The paper fits a power law to the largest Laplacian
// eigenvalues of the verified sub-graph (computed there "using the power
// iteration method in existing solvers"); we provide both a Lanczos solver
// with full reorthogonalization (the workhorse) and a power-iteration-with-
// deflation solver (the ablation baseline), on matrix-free operators for the
// symmetrized adjacency and Laplacian.
package spectral

import (
	"errors"
	"math"

	"elites/internal/graph"
	"elites/internal/linalg"
	"elites/internal/mathx"
)

// ErrBadParam flags invalid eigensolver parameters.
var ErrBadParam = errors.New("spectral: bad parameter")

// Operator is a symmetric linear operator y = A·x on R^n.
type Operator interface {
	Dim() int
	// Apply computes dst = A·src; dst and src have length Dim and do not
	// alias.
	Apply(dst, src []float64)
}

// AdjacencyOperator applies the symmetrized adjacency matrix of a digraph:
// A_sym[u][v] = 1 iff u→v or v→u. Symmetrization makes the spectrum real,
// matching how spectral analyses of directed social graphs are performed in
// practice (including the toolchains the paper used).
type AdjacencyOperator struct {
	und *graph.Digraph
}

// NewAdjacencyOperator builds the operator (materializes the undirected
// projection once).
func NewAdjacencyOperator(g *graph.Digraph) *AdjacencyOperator {
	return &AdjacencyOperator{und: g.Undirected()}
}

// Dim returns the number of nodes.
func (a *AdjacencyOperator) Dim() int { return a.und.NumNodes() }

// Apply computes dst = A_sym·src.
func (a *AdjacencyOperator) Apply(dst, src []float64) {
	for u := 0; u < a.und.NumNodes(); u++ {
		s := 0.0
		for _, v := range a.und.OutNeighbors(u) {
			s += src[v]
		}
		dst[u] = s
	}
}

// LaplacianOperator applies L = D − A_sym of the undirected projection,
// where D is the diagonal degree matrix. Its largest eigenvalues track the
// largest degrees (for a star of degree d, λ_max = d+1), which couples the
// eigenvalue power law to the degree power law exactly as §IV-B observes.
type LaplacianOperator struct {
	und *graph.Digraph
	deg []float64
}

// NewLaplacianOperator builds the operator.
func NewLaplacianOperator(g *graph.Digraph) *LaplacianOperator {
	und := g.Undirected()
	deg := make([]float64, und.NumNodes())
	for u := 0; u < und.NumNodes(); u++ {
		deg[u] = float64(und.OutDegree(u))
	}
	return &LaplacianOperator{und: und, deg: deg}
}

// Dim returns the number of nodes.
func (l *LaplacianOperator) Dim() int { return l.und.NumNodes() }

// Apply computes dst = (D − A)·src.
func (l *LaplacianOperator) Apply(dst, src []float64) {
	for u := 0; u < l.und.NumNodes(); u++ {
		s := l.deg[u] * src[u]
		for _, v := range l.und.OutNeighbors(u) {
			s -= src[v]
		}
		dst[u] = s
	}
}

// MaxDegree returns the maximum undirected degree; λ_max of the Laplacian is
// bounded by 2·MaxDegree (and below by MaxDegree+1 for graphs with at least
// one edge), a sanity bound used in tests.
func (l *LaplacianOperator) MaxDegree() float64 {
	m := 0.0
	for _, d := range l.deg {
		if d > m {
			m = d
		}
	}
	return m
}

// DenseOperator wraps a dense symmetric matrix as an Operator (test oracle).
type DenseOperator struct{ M *linalg.Matrix }

// Dim returns the matrix dimension.
func (d *DenseOperator) Dim() int { return d.M.Rows }

// Apply computes dst = M·src.
func (d *DenseOperator) Apply(dst, src []float64) {
	out := d.M.MulVec(src)
	copy(dst, out)
}

// TopEigenvaluesLanczos computes the k largest eigenvalues of the symmetric
// operator op using the Lanczos iteration with full reorthogonalization
// against all stored basis vectors (robust against the ghost-eigenvalue
// problem at the cost of O(n·iters) memory). iters controls the Krylov
// dimension; it is clamped to [2k+10, n]. Eigenvalues return in descending
// order; only Ritz values that have converged (residual heuristic via
// repetition) are trustworthy, so callers requesting k values should allow
// iters ≈ 3k for power-law-tailed spectra.
func TopEigenvaluesLanczos(op Operator, k, iters int, rng *mathx.RNG) ([]float64, error) {
	n := op.Dim()
	if n == 0 {
		return nil, nil
	}
	if k <= 0 {
		return nil, ErrBadParam
	}
	if k > n {
		k = n
	}
	if iters < 2*k+10 {
		iters = 2*k + 10
	}
	if iters > n {
		iters = n
	}
	if iters < 1 {
		iters = 1
	}
	// Lanczos with full reorthogonalization.
	basis := make([][]float64, 0, iters)
	alpha := make([]float64, 0, iters)
	beta := make([]float64, 0, iters) // beta[j] couples v_j and v_{j+1}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal()
	}
	normalize(v)
	w := make([]float64, n)
	for j := 0; j < iters; j++ {
		basis = append(basis, append([]float64(nil), v...))
		op.Apply(w, v)
		a := linalg.Dot(w, v)
		alpha = append(alpha, a)
		// w ← w − a·v_j − b_{j-1}·v_{j-1}, then full reorthogonalization.
		linalg.Axpy(-a, v, w)
		if j > 0 {
			linalg.Axpy(-beta[j-1], basis[j-1], w)
		}
		for _, u := range basis {
			c := linalg.Dot(w, u)
			if c != 0 {
				linalg.Axpy(-c, u, w)
			}
		}
		b := linalg.Norm2(w)
		if b < 1e-10 {
			// Invariant subspace found. Restart with a random vector
			// orthogonal to the basis and record a zero coupling so
			// the tridiagonal matrix splits into independent blocks
			// (keeping a nonzero β here would fabricate spurious
			// coupling between the blocks).
			if len(basis) >= n {
				break
			}
			for i := range w {
				w[i] = rng.Normal()
			}
			for _, u := range basis {
				c := linalg.Dot(w, u)
				linalg.Axpy(-c, u, w)
			}
			b2 := linalg.Norm2(w)
			if b2 < 1e-10 {
				break
			}
			beta = append(beta, 0)
			for i := range v {
				v[i] = w[i] / b2
			}
			continue
		}
		beta = append(beta, b)
		for i := range v {
			v[i] = w[i] / b
		}
	}
	m := len(alpha)
	if m == 0 {
		return nil, nil
	}
	evs, err := linalg.SymTridiagonalEigenvalues(alpha, beta[:m-1])
	if err != nil {
		return nil, err
	}
	if k > len(evs) {
		k = len(evs)
	}
	return evs[:k], nil
}

// TopEigenvaluesPower computes the k largest eigenvalues by power iteration
// with Hotelling deflation: after each eigenpair (λ, v) converges, the
// operator is replaced by A − λ·v·vᵀ. It is O(k·iters·m) and degrades when
// eigenvalues cluster — precisely the regime the ablation bench exposes
// against Lanczos. Returns eigenvalues in the order found (descending in
// magnitude for PSD operators such as the Laplacian).
func TopEigenvaluesPower(op Operator, k, iters int, tol float64, rng *mathx.RNG) ([]float64, error) {
	n := op.Dim()
	if n == 0 {
		return nil, nil
	}
	if k <= 0 {
		return nil, ErrBadParam
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 300
	}
	if tol <= 0 {
		tol = 1e-10
	}
	var deflV [][]float64
	var deflL []float64
	values := make([]float64, 0, k)
	v := make([]float64, n)
	w := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := range v {
			v[i] = rng.Normal()
		}
		// Orthogonalize against found eigenvectors.
		for _, u := range deflV {
			c := linalg.Dot(v, u)
			linalg.Axpy(-c, u, v)
		}
		normalize(v)
		lambda := 0.0
		for it := 0; it < iters; it++ {
			op.Apply(w, v)
			// Deflate: w ← w − Σ λ_i (v_iᵀ v) v_i.
			for d, u := range deflV {
				c := linalg.Dot(v, u)
				if c != 0 {
					linalg.Axpy(-deflL[d]*c, u, w)
				}
			}
			nl := linalg.Norm2(w)
			if nl == 0 {
				break
			}
			for i := range w {
				w[i] /= nl
			}
			diff := 0.0
			for i := range w {
				d := math.Abs(w[i]) - math.Abs(v[i])
				diff += d * d
			}
			copy(v, w)
			if math.Sqrt(diff) < tol && it > 3 {
				lambda = nl
				break
			}
			lambda = nl
		}
		// Rayleigh quotient for a signed eigenvalue.
		op.Apply(w, v)
		for d, u := range deflV {
			c := linalg.Dot(v, u)
			if c != 0 {
				linalg.Axpy(-deflL[d]*c, u, w)
			}
		}
		lambda = linalg.Dot(w, v)
		values = append(values, lambda)
		deflV = append(deflV, append([]float64(nil), v...))
		deflL = append(deflL, lambda)
	}
	return values, nil
}

func normalize(v []float64) {
	n := linalg.Norm2(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
