package twitter

import (
	"math"
	"testing"
	"time"

	"elites/internal/gen"
	"elites/internal/text"
	"elites/internal/timeseries"
)

func smallPlatform(t *testing.T, n int) *Platform {
	t.Helper()
	cfg := DefaultPlatformConfig(n)
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformBasics(t *testing.T) {
	p := smallPlatform(t, 2000)
	if p.NumVerified() != 2000 {
		t.Fatalf("verified = %d", p.NumVerified())
	}
	en := p.EnglishNodes()
	share := float64(len(en)) / 2000
	if share < 0.72 || share < 0.5 || share > 0.84 {
		t.Fatalf("english share = %v, want ≈0.777", share)
	}
	// Profiles resolvable both ways.
	pr := p.ProfileByNode(7)
	got, err := p.ProfileByID(pr.ID)
	if err != nil || got.ScreenName != pr.ScreenName {
		t.Fatalf("profile lookup mismatch: %v", err)
	}
	if _, err := p.ProfileByID(555); err != ErrUnknownUser {
		t.Fatal("unknown id should error")
	}
}

func TestProfileMetricsPlausible(t *testing.T) {
	p := smallPlatform(t, 2000)
	in := p.Graph().InDegrees()
	var sumF float64
	for v := 0; v < p.NumVerified(); v++ {
		pr := p.ProfileByNode(v)
		if pr.Followers < 0 || pr.Friends < 0 || pr.Listed < 0 || pr.Statuses < 0 {
			t.Fatalf("negative metric at %d: %+v", v, pr)
		}
		if !pr.Verified {
			t.Fatal("all platform users are verified")
		}
		if pr.Bio == "" || pr.ScreenName == "" {
			t.Fatalf("empty profile text at %d", v)
		}
		if pr.CreatedAt.After(SnapshotDate) {
			t.Fatal("created in the future")
		}
		sumF += float64(pr.Followers)
	}
	// Followers must correlate with verified in-degree (Fig 5 premise).
	var num, denA, denB float64
	meanIn, meanF := 0.0, sumF/float64(p.NumVerified())
	for _, d := range in {
		meanIn += float64(d)
	}
	meanIn /= float64(len(in))
	for v, d := range in {
		da := float64(d) - meanIn
		db := float64(p.ProfileByNode(v).Followers) - meanF
		num += da * db
		denA += da * da
		denB += db * db
	}
	r := num / math.Sqrt(denA*denB)
	if r < 0.5 {
		t.Fatalf("followers vs in-degree correlation = %v, want strong", r)
	}
}

func TestCategorySinksAreStars(t *testing.T) {
	p := smallPlatform(t, 4000)
	for v, role := range p.GenResult().Roles {
		if role == gen.RoleCelebritySink {
			cat := p.ProfileByNode(v).Category
			if cat != CatActor && cat != CatMusician {
				t.Fatalf("sink category = %v", cat)
			}
		}
	}
}

func TestBioCorpusReproducesTables(t *testing.T) {
	p := smallPlatform(t, 6000)
	ds, err := DatasetFromPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	big := text.NewCounter(2)
	tri := text.NewCounter(3)
	for _, bio := range ds.Bios() {
		toks := text.Tokenize(bio)
		big.Add(toks)
		tri.Add(toks)
	}
	topBig := big.Top(15)
	if len(topBig) == 0 || topBig[0].Phrase() != "Official Twitter" {
		t.Fatalf("top bigram = %v, want Official Twitter", topBig)
	}
	topTri := tri.Top(15)
	if len(topTri) == 0 || topTri[0].Phrase() != "Official Twitter Account" {
		t.Fatalf("top trigram = %v, want Official Twitter Account", topTri)
	}
	// Signature phrases from Tables I/II must appear in the top lists.
	wantBigrams := map[string]bool{"Award Winning": false, "Singer Songwriter": false,
		"Husband Father": false, "Breaking News": false}
	for _, g := range topBig {
		if _, ok := wantBigrams[g.Phrase()]; ok {
			wantBigrams[g.Phrase()] = true
		}
	}
	for phrase, found := range wantBigrams {
		if !found {
			t.Errorf("bigram %q missing from top-15: %v", phrase, topBig)
		}
	}
	wantTrigrams := map[string]bool{"Official Twitter Page": false, "Weather Alerts En": false}
	for _, g := range topTri {
		if _, ok := wantTrigrams[g.Phrase()]; ok {
			wantTrigrams[g.Phrase()] = true
		}
	}
	for phrase, found := range wantTrigrams {
		if !found {
			t.Errorf("trigram %q missing from top-15: %v", phrase, topTri)
		}
	}
}

func TestActivitySeriesShape(t *testing.T) {
	p := smallPlatform(t, 3000)
	series := p.ActivitySeries(p.EnglishNodes())
	if series.Len() != CollectionDays {
		t.Fatalf("series length = %d", series.Len())
	}
	// Sundays reliably lower than weekdays.
	wm := series.WeekdayMeans()
	weekdayMean := (wm[1] + wm[2] + wm[3] + wm[4] + wm[5]) / 5
	if wm[0] >= 0.95*weekdayMean {
		t.Fatalf("Sunday mean %v not below weekday mean %v", wm[0], weekdayMean)
	}
	// Portmanteau: decisive rejection, as in §V.
	lb, err := timeseries.LjungBox(series.Values, 185)
	if err != nil {
		t.Fatal(err)
	}
	if p := timeseries.MaxPValue(lb); p > 1e-6 {
		t.Fatalf("max Ljung–Box p = %v, want tiny", p)
	}
	// ADF with constant+trend: stationary (paper: −3.86 < −3.42).
	adf, err := timeseries.ADF(series.Values, timeseries.RegConstantTrend, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !adf.Stationary() {
		t.Fatalf("activity series not stationary: stat %v crit %v", adf.Statistic, adf.Crit5)
	}
}

func TestActivityChangepoints(t *testing.T) {
	p := smallPlatform(t, 3000)
	series := p.ActivitySeries(p.EnglishNodes())
	cands := timeseries.PenaltySweep(series.Values, 10, 400, 12, 7, 6)
	if len(cands) < 2 {
		t.Fatalf("penalty sweep found %v", cands)
	}
	// The paper's criterion: dates retained "in a significant number of
	// runs" are viable, and only two events survive — "one slightly
	// before Christmas (23rd–25th December)" and one "around the first
	// week of April". We therefore require every stable candidate to
	// fall inside one of those two event windows (the Christmas window
	// extends over the planted 12-day holiday dip), with both windows
	// hit.
	christmas := series.IndexOf(time.Date(2017, 12, 23, 0, 0, 0, 0, time.UTC))
	april := series.IndexOf(time.Date(2018, 4, 3, 0, 0, 0, 0, time.UTC))
	inXmas, inApril, outside := false, false, false
	for _, c := range cands {
		if c.Stability < 0.33 {
			continue
		}
		switch {
		case c.Index >= christmas-7 && c.Index <= christmas+19:
			inXmas = true
		case c.Index >= april-10 && c.Index <= april+10:
			inApril = true
		default:
			outside = true
		}
	}
	if !inXmas || !inApril || outside {
		t.Fatalf("changepoint windows: xmas=%v april=%v spurious=%v cands=%v (want windows around %d and %d)",
			inXmas, inApril, outside, cands, christmas, april)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestFollowerSeriesMonotoneTrend(t *testing.T) {
	p := smallPlatform(t, 500)
	fs := p.FollowerSeries(3)
	if len(fs) != CollectionDays {
		t.Fatal("length")
	}
	if fs[CollectionDays-1] <= fs[0] {
		t.Fatalf("followers should grow: %v -> %v", fs[0], fs[CollectionDays-1])
	}
	final := float64(p.ProfileByNode(3).Followers)
	if math.Abs(fs[CollectionDays-1]-final)/final > 0.05 {
		t.Fatalf("final followers %v vs snapshot %v", fs[CollectionDays-1], final)
	}
}

func TestTweetsOnBounds(t *testing.T) {
	p := smallPlatform(t, 300)
	if p.TweetsOn(0, -1) != 0 || p.TweetsOn(0, CollectionDays) != 0 {
		t.Fatal("out-of-window days should be 0")
	}
}
