package twitter

import (
	"errors"
	"math"
	"time"

	"elites/internal/gen"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/timeseries"
)

// ErrUnknownUser is returned for ids the platform has never issued.
var ErrUnknownUser = errors.New("twitter: unknown user id")

// CollectionStart is the first day of the simulated Firehose window; the
// paper's fine-grained statistics cover June 2017 – May 2018.
var CollectionStart = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

// CollectionDays is the number of daily observations (the paper: "we have
// 366").
const CollectionDays = 366

// SnapshotDate is the crawl date (§III: 18 July 2018).
var SnapshotDate = time.Date(2018, 7, 18, 0, 0, 0, 0, time.UTC)

// PlatformConfig sizes the simulated platform.
type PlatformConfig struct {
	// Verified is the number of verified accounts (graph nodes).
	Verified int
	// EnglishShare is the fraction of verified profiles with Lang "en";
	// the paper keeps 231,246 of 297,776 ≈ 77.7%.
	EnglishShare float64
	// PeripheryFriendFactor scales how many non-verified friends each
	// verified user has, relative to its verified friends (the real
	// crawl discards these; the simulated crawler must too).
	PeripheryFriendFactor float64
	// Seed derives all platform randomness.
	Seed uint64
	// GraphConfig generates the verified follow graph; zero value means
	// gen.VerifiedDefaults(Verified).
	GraphConfig gen.Config
}

// DefaultPlatformConfig returns a platform sized to n verified users.
func DefaultPlatformConfig(n int) PlatformConfig {
	return PlatformConfig{
		Verified:              n,
		EnglishShare:          0.777,
		PeripheryFriendFactor: 1.0,
		Seed:                  42,
	}
}

// Platform is the simulated Twitter. It owns the verified follow graph, all
// verified profiles, and the activity model behind the Firehose.
type Platform struct {
	cfg      PlatformConfig
	genres   *gen.Result
	graph    *graph.Digraph
	profiles []Profile // indexed by node
	byID     map[int64]int

	// activity model
	baseRate  []float64 // expected tweets/day per node
	dayFactor []float64 // global day multiplier (seasonality + events)

	englishNodes []int
}

// NewPlatform builds the simulated platform: verified graph, profiles with
// bios and audience metrics, and the activity model.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Verified <= 0 {
		return nil, gen.ErrConfig
	}
	if cfg.EnglishShare <= 0 || cfg.EnglishShare > 1 {
		cfg.EnglishShare = 0.777
	}
	gcfg := cfg.GraphConfig
	if gcfg.N == 0 {
		gcfg = gen.VerifiedDefaults(cfg.Verified)
		gcfg.Seed = cfg.Seed
	}
	gres, err := gen.Generate(gcfg)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		cfg:    cfg,
		genres: gres,
		graph:  gres.Graph,
		byID:   make(map[int64]int, cfg.Verified),
	}
	rng := mathx.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	p.buildProfiles(rng)
	p.buildActivityModel(rng)
	return p, nil
}

// buildProfiles synthesizes one profile per node. Audience metrics are tied
// to network position: platform-wide followers amplify the verified
// in-degree, list memberships track followers sub-linearly, statuses track
// followers weakly with heavy noise — giving Figure 5 its correlations and
// Figure 1 its heavy tails.
func (p *Platform) buildProfiles(rng *mathx.RNG) {
	n := p.graph.NumNodes()
	in := p.graph.InDegrees()
	catSampler := mathx.NewWeightedSampler(categoryWeights)
	bios := newBioSampler()
	p.profiles = make([]Profile, n)
	for v := 0; v < n; v++ {
		cat := sampleCategory(rng, catSampler)
		if p.genres.Roles[v] == gen.RoleCelebritySink {
			// Sinks are mega-famous entertainment/brand accounts.
			if rng.Bool(0.5) {
				cat = CatActor
			} else {
				cat = CatMusician
			}
		}
		lang := "en"
		if !rng.Bool(p.cfg.EnglishShare) {
			lang = nonEnglishLangs[rng.Intn(len(nonEnglishLangs))]
		}
		// Followers: amplify verified in-degree to platform scale with
		// lognormal noise; floor keeps even fringe verified users with
		// an audience.
		followers := int64((float64(in[v]) + 2) * 120 * rng.LogNormal(0, 0.6))
		// Friends: verified out-degree plus the periphery friends the
		// API will expose.
		friends := int64(float64(p.graph.OutDegree(v)) * (1 + p.cfg.PeripheryFriendFactor) * rng.LogNormal(0, 0.25))
		// Listed: sub-linear in followers (robust influence predictor,
		// §IV-F).
		listed := int64(0.7 * math.Pow(float64(followers), 0.75) * rng.LogNormal(0, 0.4))
		// Statuses: weakly coupled to followers, dominated by noise —
		// Figure 5(e)'s lukewarm-then-strong trend.
		statuses := int64(20 * math.Pow(float64(followers)+1, 0.32) * rng.LogNormal(0, 0.9))
		created := SnapshotDate.AddDate(0, 0, -(365 + rng.Intn(365*9)))
		id := VerifiedID(v)
		p.profiles[v] = Profile{
			ID:         id,
			ScreenName: screenName(cat, v, rng),
			Name:       "Verified User " + itoa(v),
			Bio:        bios.generate(cat, rng),
			Lang:       lang,
			Verified:   true,
			Category:   cat,
			Followers:  followers,
			Friends:    friends,
			Statuses:   statuses,
			Listed:     listed,
			CreatedAt:  created,
		}
		p.byID[id] = v
		if lang == "en" {
			p.englishNodes = append(p.englishNodes, v)
		}
	}
}

// buildActivityModel prepares per-user base tweet rates and the global
// day-factor series: weekday seasonality (Sundays reliably lower), a slow
// annual wave, a level shift slightly before Christmas 2017 and another in
// the first week of April 2018 — exactly the two change-points the paper's
// PELT sweep isolates.
func (p *Platform) buildActivityModel(rng *mathx.RNG) {
	n := p.graph.NumNodes()
	p.baseRate = make([]float64, n)
	for v := 0; v < n; v++ {
		// Daily rate from lifetime statuses with jitter.
		p.baseRate[v] = float64(p.profiles[v].Statuses) / 2000 * rng.LogNormal(0, 0.3)
	}
	p.dayFactor = make([]float64, CollectionDays)
	christmas := int(time.Date(2017, 12, 23, 0, 0, 0, 0, time.UTC).Sub(CollectionStart).Hours() / 24)
	april := int(time.Date(2018, 4, 3, 0, 0, 0, 0, time.UTC).Sub(CollectionStart).Hours() / 24)
	// Platform-wide news-cycle shock: AR(1) momentum makes day-to-day
	// autocorrelation strong at every horizon (the portmanteau verdict)
	// while mean-reverting fast enough for ADF to reject a unit root
	// decisively — the paper measures −3.86 against a −3.42 critical
	// value on the same design.
	// Calibration note: the weekday dip, wave amplitude, AR momentum and
	// shift sizes below balance three verdicts the paper reports on the
	// real series — Ljung–Box decisively rejecting independence, ADF
	// rejecting a unit root (−3.86 against −3.42), and a PELT penalty
	// sweep isolating exactly the Christmas and April change-points.
	// Stronger weekday determinism or larger shifts silently destroy the
	// ADF verdict by forcing high AIC lag orders.
	prevShock := 0.0
	for d := 0; d < CollectionDays; d++ {
		date := CollectionStart.AddDate(0, 0, d)
		f := 1.0
		switch date.Weekday() {
		case time.Sunday:
			f *= 0.92
		case time.Saturday:
			f *= 0.96
		case time.Wednesday, time.Thursday:
			f *= 1.02
		}
		// Gentle platform growth: fully absorbed by the ADF regression's
		// trend term, so it cannot flip the stationarity verdict, while
		// accumulating enough drift that PELT's level model keys on the
		// genuine events rather than the slope.
		f *= math.Exp(0.00022 * float64(d))
		// The two events the paper's PELT sweep isolates: a sharp
		// holiday slowdown slightly before Christmas that recovers
		// through early January (transient, so it reads as mean
		// reversion to ADF), and a sustained uptick in the first week
		// of April.
		if d >= christmas && d < christmas+12 {
			prog := float64(d-christmas) / 12
			f *= 0.72 + 0.28*prog
		}
		if d >= april {
			f *= 1.05
		}
		// News-cycle shock as a positive MA(1): stories span about two
		// days, so adjacent days share a shock. This pins the lag-1
		// autocorrelation well away from zero (Ljung–Box rejects at
		// every horizon, as the paper reports) while remaining memory-
		// free beyond one lag — no slow wandering to mask the ADF or
		// PELT verdicts.
		shock := rng.Normal()
		f *= math.Exp(0.0375 * (shock + 0.6*prevShock))
		prevShock = shock
		p.dayFactor[d] = f
	}
}

// Graph returns the verified follow graph (node ids are indexes, convert
// with VerifiedID).
func (p *Platform) Graph() *graph.Digraph { return p.graph }

// GenResult exposes the generator output (roles, fame ranks) for analyses.
func (p *Platform) GenResult() *gen.Result { return p.genres }

// NumVerified returns the number of verified accounts.
func (p *Platform) NumVerified() int { return p.graph.NumNodes() }

// ProfileByNode returns the profile of a graph node.
func (p *Platform) ProfileByNode(v int) *Profile { return &p.profiles[v] }

// ProfileByID returns the profile for a user id.
func (p *Platform) ProfileByID(id int64) (*Profile, error) {
	v, ok := p.byID[id]
	if !ok {
		return nil, ErrUnknownUser
	}
	return &p.profiles[v], nil
}

// EnglishNodes returns the node indexes whose profile language is English —
// the population the paper studies.
func (p *Platform) EnglishNodes() []int {
	out := make([]int, len(p.englishNodes))
	copy(out, p.englishNodes)
	return out
}

// userDayNoise derives a deterministic multiplicative noise for (node, day)
// without storing the full matrix.
func (p *Platform) userDayNoise(v, day int) float64 {
	h := uint64(v)*0x9e3779b97f4a7c15 ^ uint64(day)*0xbf58476d1ce4e5b9 ^ p.cfg.Seed
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	// Map to a lognormal-ish multiplier in [0.67, 1.5].
	u := float64(h>>11) / (1 << 53)
	return math.Exp((u - 0.5) * 0.8)
}

// TweetsOn returns the simulated tweet count of node v on collection day d.
func (p *Platform) TweetsOn(v, day int) float64 {
	if day < 0 || day >= CollectionDays {
		return 0
	}
	return p.baseRate[v] * p.dayFactor[day] * p.userDayNoise(v, day)
}

// ActivitySeries aggregates daily tweet counts over the given nodes (pass
// EnglishNodes() for the paper's Figure 6 / §V series).
func (p *Platform) ActivitySeries(nodes []int) *timeseries.DailySeries {
	vals := make([]float64, CollectionDays)
	for d := 0; d < CollectionDays; d++ {
		s := 0.0
		for _, v := range nodes {
			s += p.TweetsOn(v, d)
		}
		vals[d] = s
	}
	return &timeseries.DailySeries{Start: CollectionStart, Values: vals}
}

// FollowerSeries returns the Firehose's daily follower counts for one user:
// a smooth growth curve from 90% of the snapshot value across the window,
// with deterministic daily jitter.
func (p *Platform) FollowerSeries(v int) []float64 {
	out := make([]float64, CollectionDays)
	final := float64(p.profiles[v].Followers)
	for d := 0; d < CollectionDays; d++ {
		progress := float64(d) / float64(CollectionDays-1)
		base := final * (0.90 + 0.10*progress)
		out[d] = base * (0.99 + 0.02*(p.userDayNoise(v, d+CollectionDays)-0.67)/0.83)
	}
	return out
}
