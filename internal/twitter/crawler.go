package twitter

import (
	"errors"
	"fmt"
	"time"

	"elites/internal/graph"
	"elites/internal/mathx"
)

// crawlMaxRetries bounds per-call retries on transient 503s; backoff is
// exponential on the virtual clock (5s, 10s, 20s, ...) with equal jitter,
// mirroring production crawler etiquette.
const crawlMaxRetries = 6

// crawlRetryBudget caps the cumulative simulated backoff one crawl may pay
// across every retried call. A persistently failing endpoint exhausts the
// budget and fails the crawl with a descriptive error instead of silently
// advancing the virtual clock forever.
const crawlRetryBudget = 45 * time.Minute

// retrier tracks one crawl's retry spending. The jitter stream is seeded
// from a fixed label so identical failure sequences back off identically —
// the crawl stays deterministic, the waits still decorrelate.
type retrier struct {
	rng   *mathx.RNG
	spent time.Duration
	waits int
}

func newRetrier() *retrier {
	return &retrier{rng: mathx.NewRNG(1).Derive("twitter/crawl/backoff")}
}

// wait pays one backoff on the virtual clock: equal jitter over the
// exponential base (uniform in [base/2, base]), charged against the crawl's
// cumulative budget. Exhausting the budget returns an error wrapping the
// transient failure that triggered the wait.
func (r *retrier) wait(api *API, attempt int, lastErr error) error {
	base := 5 * time.Second << uint(attempt)
	half := base / 2
	d := half + time.Duration(r.rng.Intn(int(half)+1))
	if r.spent+d > crawlRetryBudget {
		return fmt.Errorf("twitter: crawl retry budget exhausted (%v spent over %d waits, budget %v): %w",
			r.spent, r.waits, crawlRetryBudget, lastErr)
	}
	r.spent += d
	r.waits++
	api.Clock().Advance(d)
	return nil
}

// retryFriendIDs wraps api.FriendIDs with transient-error retry.
func retryFriendIDs(api *API, rt *retrier, id, cursor int64) ([]int64, int64, error) {
	for attempt := 0; ; attempt++ {
		page, next, err := api.FriendIDs(id, cursor)
		if err == nil {
			return page, next, nil
		}
		if !errors.Is(err, ErrServiceUnavailable) || attempt >= crawlMaxRetries {
			return nil, 0, err
		}
		if werr := rt.wait(api, attempt, err); werr != nil {
			return nil, 0, werr
		}
	}
}

// retryUsersLookup wraps api.UsersLookup with transient-error retry.
func retryUsersLookup(api *API, rt *retrier, ids []int64) ([]Profile, error) {
	for attempt := 0; ; attempt++ {
		profiles, err := api.UsersLookup(ids)
		if err == nil {
			return profiles, nil
		}
		if !errors.Is(err, ErrServiceUnavailable) || attempt >= crawlMaxRetries {
			return nil, err
		}
		if werr := rt.wait(api, attempt, err); werr != nil {
			return nil, werr
		}
	}
}

// Dataset is the output of the acquisition pipeline: the English verified
// sub-graph with aligned profiles — the exact artifact the paper's analyses
// consume.
type Dataset struct {
	// Graph is the induced English verified follow graph; node i
	// corresponds to Profiles[i].
	Graph *graph.Digraph
	// Profiles holds the English verified profiles.
	Profiles []Profile
	// TotalVerified is the size of the full verified set before the
	// language filter (the paper: 297,776 → 231,246 English).
	TotalVerified int
	// Crawl bookkeeping.
	APICalls        int64
	SimulatedTime   time.Duration
	FriendsThrottle int
	LookupThrottle  int
}

// Crawl runs the paper's §III pipeline against the simulated API:
//
//  1. page through the friend list of '@verified' to enumerate verified ids;
//  2. batch-fetch profiles via users/lookup;
//  3. keep profiles whose language is English;
//  4. page through friends/ids of each English verified user, discarding
//     non-verified targets;
//  5. induce the verified-only directed graph.
//
// The virtual clock pays for every rate window, so the returned
// SimulatedTime reflects what the crawl would have cost in real time.
func Crawl(api *API) (*Dataset, error) {
	start := api.Clock().Now()
	rt := newRetrier() // one backoff budget for the whole crawl

	// Step 1: enumerate verified ids from @verified.
	var verifiedIDs []int64
	cursor := int64(0)
	for {
		page, next, err := retryFriendIDs(api, rt, api.VerifiedBotID(), cursor)
		if err != nil {
			return nil, fmt.Errorf("listing @verified friends: %w", err)
		}
		verifiedIDs = append(verifiedIDs, page...)
		if next == 0 {
			break
		}
		cursor = next
	}
	verifiedSet := make(map[int64]bool, len(verifiedIDs))
	for _, id := range verifiedIDs {
		verifiedSet[id] = true
	}

	// Steps 2–3: profiles in batches of 100, keep English.
	var english []Profile
	for i := 0; i < len(verifiedIDs); i += 100 {
		j := i + 100
		if j > len(verifiedIDs) {
			j = len(verifiedIDs)
		}
		profiles, err := retryUsersLookup(api, rt, verifiedIDs[i:j])
		if err != nil {
			return nil, fmt.Errorf("users lookup: %w", err)
		}
		for _, p := range profiles {
			if p.Lang == "en" {
				english = append(english, p)
			}
		}
	}
	index := make(map[int64]int, len(english))
	for i, p := range english {
		index[p.ID] = i
	}

	// Steps 4–5: friend lists, filtered to the English verified set.
	b := graph.NewBuilder(len(english))
	for i, p := range english {
		cursor := int64(0)
		for {
			page, next, err := retryFriendIDs(api, rt, p.ID, cursor)
			if err != nil {
				return nil, fmt.Errorf("friends of %d: %w", p.ID, err)
			}
			for _, fid := range page {
				if j, ok := index[fid]; ok {
					b.AddEdge(i, j)
				}
			}
			if next == 0 {
				break
			}
			cursor = next
		}
	}
	ft, lt := api.Throttles()
	return &Dataset{
		Graph:           b.Build(),
		Profiles:        english,
		TotalVerified:   len(verifiedIDs),
		APICalls:        api.Calls,
		SimulatedTime:   api.Clock().Now().Sub(start),
		FriendsThrottle: ft,
		LookupThrottle:  lt,
	}, nil
}

// DatasetFromPlatform shortcuts the crawl: it induces the English verified
// sub-graph directly from platform state. The result is identical to
// Crawl's (the crawler tests assert exactly this); analyses use it when the
// acquisition path itself is not under study.
func DatasetFromPlatform(p *Platform) (*Dataset, error) {
	nodes := p.EnglishNodes()
	sub, orig, err := p.Graph().InducedSubgraph(nodes)
	if err != nil {
		return nil, fmt.Errorf("twitter: inducing verified subgraph: %w", err)
	}
	profiles := make([]Profile, len(orig))
	for i, v := range orig {
		profiles[i] = *p.ProfileByNode(v)
	}
	return &Dataset{
		Graph:         sub,
		Profiles:      profiles,
		TotalVerified: p.NumVerified(),
	}, nil
}

// Metric identifies one of the four Figure 1 audience metrics.
type Metric int

// Figure 1 metrics.
const (
	MetricFollowers Metric = iota
	MetricFriends
	MetricListed
	MetricStatuses
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricFollowers:
		return "followers"
	case MetricFriends:
		return "friends"
	case MetricListed:
		return "list memberships"
	case MetricStatuses:
		return "statuses"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// MetricValues extracts the chosen metric across the dataset's profiles.
func (d *Dataset) MetricValues(m Metric) []float64 {
	out := make([]float64, len(d.Profiles))
	for i, p := range d.Profiles {
		switch m {
		case MetricFollowers:
			out[i] = float64(p.Followers)
		case MetricFriends:
			out[i] = float64(p.Friends)
		case MetricListed:
			out[i] = float64(p.Listed)
		case MetricStatuses:
			out[i] = float64(p.Statuses)
		}
	}
	return out
}

// Bios returns all bios in the dataset.
func (d *Dataset) Bios() []string {
	out := make([]string, len(d.Profiles))
	for i, p := range d.Profiles {
		out[i] = p.Bio
	}
	return out
}
