package twitter

import (
	"testing"
	"time"
)

func TestCrawlMatchesDirectInduction(t *testing.T) {
	p := smallPlatform(t, 1500)
	api := NewAPI(p)
	crawled, err := Crawl(api)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DatasetFromPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	if crawled.Graph.NumNodes() != direct.Graph.NumNodes() {
		t.Fatalf("node count: crawl %d vs direct %d",
			crawled.Graph.NumNodes(), direct.Graph.NumNodes())
	}
	if crawled.Graph.NumEdges() != direct.Graph.NumEdges() {
		t.Fatalf("edge count: crawl %d vs direct %d",
			crawled.Graph.NumEdges(), direct.Graph.NumEdges())
	}
	// Node orderings may differ; compare via profile ids.
	idToDirect := map[int64]int{}
	for i, pr := range direct.Profiles {
		idToDirect[pr.ID] = i
	}
	crawled.Graph.Edges(func(u, v int) bool {
		du, ok1 := idToDirect[crawled.Profiles[u].ID]
		dv, ok2 := idToDirect[crawled.Profiles[v].ID]
		if !ok1 || !ok2 || !direct.Graph.HasEdge(du, dv) {
			t.Fatalf("edge %d->%d from crawl missing in direct graph", u, v)
		}
		return true
	})
	if crawled.TotalVerified != 1500 {
		t.Fatalf("total verified = %d", crawled.TotalVerified)
	}
}

func TestCrawlPaysRateLimits(t *testing.T) {
	p := smallPlatform(t, 1200)
	api := NewAPI(p)
	ds, err := Crawl(api)
	if err != nil {
		t.Fatal(err)
	}
	// ~930 English users × >=1 friends/ids call each at 15/15min →
	// over an hour of simulated time and many throttles.
	if ds.FriendsThrottle == 0 {
		t.Fatal("friends/ids should have throttled")
	}
	if ds.SimulatedTime < time.Hour {
		t.Fatalf("simulated crawl time %v, want > 1h", ds.SimulatedTime)
	}
	if ds.APICalls < int64(len(ds.Profiles)) {
		t.Fatalf("calls = %d, fewer than users", ds.APICalls)
	}
}

func TestAPIPagination(t *testing.T) {
	p := smallPlatform(t, 1000)
	api := NewAPI(p)
	api.PageSize = 100
	var all []int64
	cursor := int64(0)
	pages := 0
	for {
		page, next, err := api.FriendIDs(api.VerifiedBotID(), cursor)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, page...)
		pages++
		if next == 0 {
			break
		}
		cursor = next
	}
	if len(all) != 1000 {
		t.Fatalf("paged ids = %d", len(all))
	}
	if pages != 10 {
		t.Fatalf("pages = %d", pages)
	}
	if _, _, err := api.FriendIDs(api.VerifiedBotID(), 99999); err != ErrBadCursor {
		t.Fatal("bad cursor should error")
	}
	if _, _, err := api.FriendIDs(12345, 0); err != ErrUnknownUser {
		t.Fatal("unknown user should error")
	}
}

func TestAPIFriendListsContainPeriphery(t *testing.T) {
	p := smallPlatform(t, 800)
	api := NewAPI(p)
	api.PageSize = 100000
	// Find a node with several friends.
	var node int
	for v := 0; v < p.NumVerified(); v++ {
		if p.Graph().OutDegree(v) >= 10 {
			node = v
			break
		}
	}
	page, _, err := api.FriendIDs(VerifiedID(node), 0)
	if err != nil {
		t.Fatal(err)
	}
	var verified, periphery int
	for _, id := range page {
		if IsPeripheryID(id) {
			periphery++
		} else {
			verified++
		}
	}
	if verified != p.Graph().OutDegree(node) {
		t.Fatalf("verified friends = %d, want %d", verified, p.Graph().OutDegree(node))
	}
	if periphery == 0 {
		t.Fatal("periphery friends missing — language/verified filtering untested")
	}
}

func TestUsersLookupLimits(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	ids := make([]int64, 101)
	if _, err := api.UsersLookup(ids); err != ErrTooMany {
		t.Fatal("oversized lookup should error")
	}
	// Unknown ids silently dropped.
	got, err := api.UsersLookup([]int64{VerifiedID(1), 777, peripheryIDBase + 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != VerifiedID(1) {
		t.Fatalf("lookup = %v", got)
	}
}

func TestRateWindowAdvancesClock(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	start := api.Clock().Now()
	// 16 friends/ids calls: the 16th must wait for the window reset.
	for i := 0; i < 16; i++ {
		if _, _, err := api.FriendIDs(api.VerifiedBotID(), 0); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := api.Clock().Now().Sub(start)
	if elapsed < windowLength {
		t.Fatalf("clock advanced %v, want >= %v", elapsed, windowLength)
	}
	f, _ := api.Throttles()
	if f != 1 {
		t.Fatalf("throttles = %d, want 1", f)
	}
}

func TestMetricValuesAndBios(t *testing.T) {
	p := smallPlatform(t, 400)
	ds, err := DatasetFromPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{MetricFollowers, MetricFriends, MetricListed, MetricStatuses} {
		vals := ds.MetricValues(m)
		if len(vals) != len(ds.Profiles) {
			t.Fatalf("%v: %d values", m, len(vals))
		}
		if m.String() == "" {
			t.Fatal("metric name empty")
		}
	}
	bios := ds.Bios()
	if len(bios) != len(ds.Profiles) || bios[0] == "" {
		t.Fatal("bios wrong")
	}
}

func TestNodeIDMapping(t *testing.T) {
	if NodeOfID(VerifiedID(7), 10) != 7 {
		t.Fatal("round trip failed")
	}
	if NodeOfID(VerifiedID(15), 10) != -1 {
		t.Fatal("out of range should be -1")
	}
	if !IsPeripheryID(peripheryIDBase+1) || IsPeripheryID(VerifiedID(3)) {
		t.Fatal("periphery classification wrong")
	}
}

func TestCategoryString(t *testing.T) {
	if CatJournalist.String() != "journalist" || Category(250).String() == "" {
		t.Fatal("category names")
	}
}
