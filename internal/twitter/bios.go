package twitter

import (
	"strings"

	"elites/internal/mathx"
)

// Bio synthesis. Templates are weighted so that the corpus-level n-gram
// tables reproduce the paper's Tables I and II: "Official Twitter" dominates
// the bigrams, "Official Twitter Account" the trigrams, with the journalism
// / sport / music / brand phrase families in the observed relative order.
// The {slot} markers are filled from the slot lists below.

type bioTemplate struct {
	weight float64
	text   string
}

var bioSlots = map[string][]string{
	"outlet": {
		"New York Times", "Wall Street Journal", "BBC News", "The Guardian",
		"Washington Post", "Sky Sports", "Reuters", "Associated Press",
	},
	"city": {
		"London", "New York", "Los Angeles", "Chicago", "Manchester",
		"Sydney", "Toronto", "Dublin",
	},
	"team": {
		"United", "City FC", "the Tigers", "the Hawks", "Rovers",
		"the Saints", "Athletic", "the Bears",
	},
	"brandline": {
		"deals and support", "news and offers", "products and stories",
		"updates and releases",
	},
	"hobby": {
		"Coffee lover", "Dog person", "Runner", "Foodie", "Traveller",
		"Bookworm",
	},
}

var bioTemplates = map[Category][]bioTemplate{
	CatJournalist: {
		{3, "Award winning journalist. Anchor reporter at {outlet}. Opinions own."},
		{2.5, "Journalist covering politics for {outlet}. Breaking news and latest news. Opinions own."},
		{1.5, "Managing editor at {outlet}. Formerly {city}. Opinions own."},
		{1.5, "Editor in chief of {outlet}."},
		{1.5, "Anchor reporter. {outlet} alum. Latest news from {city}."},
		{1, "Award winning journalist and best selling author."},
		{1, "Correspondent for {outlet}. Husband. Father."},
	},
	CatAthlete: {
		{2.5, "Professional rugby player for {team}."},
		{2.3, "Professional baseball player. {city} born and raised."},
		{1.2, "Olympic gold medalist. Proud of my team."},
		{2, "Professional footballer. Official Twitter account."},
		{1.5, "Athlete. Husband. Father. Blessed."},
	},
	CatMusician: {
		{1.6, "Singer songwriter. New album out now."},
		{1.4, "Singer songwriter. Booking: contact management."},
		{1.0, "Singer songwriter from {city}. Tour dates online."},
		{1.3, "Producer and DJ. Official Twitter account. New album out everywhere."},
		{1.0, "Rapper and singer songwriter. {city}."},
	},
	CatActor: {
		{2, "Actor. Producer. {city}."},
		{1.5, "Emmy award winning actor. Official Twitter account."},
		{1.5, "Actor and director. Husband. Father."},
		{1, "Emmy award winning producer. Represented by {outlet}."},
	},
	CatBrand: {
		{3.5, "Official Twitter account of {city} {brandline}. For customer service follow us and DM."},
		{2.5, "Official Twitter of the {team} store. Support Monday to Friday 9am-5pm."},
		{2, "Official account for {brandline}. Follow us for more."},
		{1.5, "Official Twitter page. International {brandline}. Booking available online."},
		{1.5, "Co founder and CEO. Tech. Startups. {city}."},
	},
	CatMediaOutlet: {
		{3, "Official Twitter account of {outlet}. Breaking news, sport and weather."},
		{2, "Official Twitter page of {outlet} {city}. Latest news all day."},
		{1.5, "The official account. Breaking news from {city} and beyond. Follow us."},
		{1, "News, sport and entertainment from {outlet}. Official Twitter."},
	},
	CatGovernment: {
		{2.5, "Official Twitter account of {city} Police. Report crime here. Do not report emergencies on Twitter."},
		{1.5, "Official Twitter page of the {city} city council. Support Monday to Friday."},
		{1, "Report crime here. For emergencies call 911. Not monitored 24/7."},
	},
	CatWeather: {
		{2.5, "Weather alerts EN for {city} and region. Official Twitter account."},
		{1.5, "Weather alerts EN. Forecasts, warnings and updates. Follow us."},
		{1.0, "Weather alerts EN service. Severe weather warnings for {city}."},
	},
	CatWriter: {
		{2.5, "Best selling author of novels. Represented by {outlet}."},
		{2, "Award winning writer. Best selling author. {city}."},
		{1.5, "Author. Columnist at {outlet}. Opinions own."},
	},
	CatPolitician: {
		{2.5, "Official Twitter account. Member of Parliament for {city}. Husband. Father."},
		{2, "Senator for {city}. Official account. Views my own."},
		{1.5, "Mayor of {city}. Working for you. Official Twitter page."},
	},
	CatInfluencer: {
		{2.5, "Husband. Father. {hobby}. Instagram and Snapchat: same handle."},
		{2, "{hobby}. Gay. He/him. Instagram below. Follow us on YouTube."},
		{2, "Digital creator. Instagram, Facebook and Snapchat. Business: DM."},
		{1.5, "Co host of the morning show. {hobby}. Opinions own."},
		{1.5, "Mom. Wife. {hobby}. Facebook and Instagram: same name."},
	},
}

// bioSampler is a prebuilt alias sampler per category over its templates.
type bioSampler struct {
	samplers [numCategories]*mathx.WeightedSampler
}

func newBioSampler() *bioSampler {
	bs := &bioSampler{}
	for cat := Category(0); cat < numCategories; cat++ {
		ts := bioTemplates[cat]
		w := make([]float64, len(ts))
		for i, t := range ts {
			w[i] = t.weight
		}
		bs.samplers[cat] = mathx.NewWeightedSampler(w)
	}
	return bs
}

// generate renders one bio for the category.
func (bs *bioSampler) generate(cat Category, rng *mathx.RNG) string {
	ts := bioTemplates[cat]
	t := ts[bs.samplers[cat].Sample(rng)]
	return fillSlots(t.text, rng)
}

func fillSlots(s string, rng *mathx.RNG) string {
	for {
		i := strings.IndexByte(s, '{')
		if i < 0 {
			return s
		}
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			return s
		}
		key := s[i+1 : i+j]
		vals := bioSlots[key]
		var repl string
		if len(vals) > 0 {
			repl = vals[rng.Intn(len(vals))]
		}
		s = s[:i] + repl + s[i+j+1:]
	}
}

// sampleCategory draws an archetype from the global mix.
func sampleCategory(rng *mathx.RNG, cs *mathx.WeightedSampler) Category {
	return Category(cs.Sample(rng))
}

// screenName builds a deterministic handle for a node.
func screenName(cat Category, node int, rng *mathx.RNG) string {
	prefixes := map[Category][]string{
		CatJournalist:  {"Reports", "News", "Writes", "Desk"},
		CatAthlete:     {"Plays", "Sport", "Pro", "Team"},
		CatMusician:    {"Music", "Sings", "Beats", "Sound"},
		CatActor:       {"OnScreen", "Films", "Stage", "Acts"},
		CatBrand:       {"Shop", "Official", "HQ", "Store"},
		CatMediaOutlet: {"Daily", "Times", "Tribune", "Herald"},
		CatGovernment:  {"City", "Gov", "Police", "Council"},
		CatWeather:     {"Wx", "Storm", "Forecast", "Climate"},
		CatWriter:      {"Writes", "Books", "Author", "Pages"},
		CatPolitician:  {"Rep", "Senator", "MP", "Mayor"},
		CatInfluencer:  {"Real", "Its", "The", "Just"},
	}
	p := prefixes[cat]
	return p[rng.Intn(len(p))] + "User" + itoa(node%screenNameDigits) + itoa(node/screenNameDigits)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
