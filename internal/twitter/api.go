package twitter

import (
	"errors"
	"sort"
	"time"
)

// API errors.
var (
	ErrBadCursor = errors.New("twitter: bad cursor")
	ErrTooMany   = errors.New("twitter: too many ids in one lookup")
	// ErrServiceUnavailable simulates a transient 503; callers should
	// back off and retry, as the crawler does.
	ErrServiceUnavailable = errors.New("twitter: 503 service unavailable (transient)")
)

// Clock is a virtual clock: rate-limited calls advance it instead of
// sleeping, so a crawl that would take days of wall time simulates in
// milliseconds while still accounting for every rate window.
type Clock struct {
	now time.Time
}

// NewClock starts a virtual clock at the given time.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// rateWindow models Twitter's fixed 15-minute rate windows.
type rateWindow struct {
	limit     int
	used      int
	windowEnd time.Time
	// Throttles counts how many times a caller had to wait for a window
	// reset.
	Throttles int
}

const windowLength = 15 * time.Minute

// take consumes one call, advancing the clock to the next window when the
// current one is exhausted.
func (w *rateWindow) take(c *Clock) {
	if c.Now().After(w.windowEnd) || c.Now().Equal(w.windowEnd) {
		w.windowEnd = c.Now().Add(windowLength)
		w.used = 0
	}
	if w.used >= w.limit {
		// Block until the window resets.
		c.Advance(w.windowEnd.Sub(c.Now()))
		w.windowEnd = c.Now().Add(windowLength)
		w.used = 0
		w.Throttles++
	}
	w.used++
}

// API is the simulated REST surface: friends/ids with cursor pagination and
// users/lookup batching, each behind its own 15-minute rate window, exactly
// the endpoints the paper's §III crawl exercises.
type API struct {
	p     *Platform
	clock *Clock

	// FriendsIDs is limited to 15 requests / 15 min (the painful one);
	// UsersLookup to 300 / 15 min, mirroring the historical app-auth
	// quotas.
	friendsLimiter *rateWindow
	lookupLimiter  *rateWindow

	// PageSize is ids per friends/ids page (Twitter: 5000).
	PageSize int
	// Calls counts total API calls served.
	Calls int64
	// FailureRate injects transient 503s on that fraction of calls
	// (deterministic in the call counter); 0 disables injection. Failed
	// calls still consume rate-limit budget, as on the real platform.
	FailureRate float64
	// Failures counts injected 503s.
	Failures int64
}

// maybeFail deterministically injects a 503 on a FailureRate fraction of
// calls.
func (a *API) maybeFail() error {
	if a.FailureRate <= 0 {
		return nil
	}
	h := uint64(a.Calls) * 0x9e3779b97f4a7c15
	h ^= h >> 31
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 29
	if float64(h>>11)/(1<<53) < a.FailureRate {
		a.Failures++
		return ErrServiceUnavailable
	}
	return nil
}

// NewAPI wraps a platform with the rate-limited API, starting the virtual
// clock at the snapshot date.
func NewAPI(p *Platform) *API {
	return &API{
		p:              p,
		clock:          NewClock(SnapshotDate),
		friendsLimiter: &rateWindow{limit: 15},
		lookupLimiter:  &rateWindow{limit: 300},
		PageSize:       5000,
	}
}

// Clock exposes the virtual clock (tests and crawlers read elapsed time).
func (a *API) Clock() *Clock { return a.clock }

// Throttles returns how many rate-window waits each endpoint has incurred.
func (a *API) Throttles() (friends, lookup int) {
	return a.friendsLimiter.Throttles, a.lookupLimiter.Throttles
}

// VerifiedBotID returns the id of the '@verified' account.
func (a *API) VerifiedBotID() int64 { return verifiedBotID }

// FriendIDs returns one page of the friend list (accounts the user follows)
// for the given user id, plus the next cursor (0 when exhausted). The
// '@verified' account follows every verified user. Verified users' friend
// lists interleave their verified friends with deterministic periphery
// (non-verified) ids, which the caller must filter — as the paper's pipeline
// does.
func (a *API) FriendIDs(id int64, cursor int64) ([]int64, int64, error) {
	a.friendsLimiter.take(a.clock)
	a.Calls++
	if err := a.maybeFail(); err != nil {
		return nil, 0, err
	}
	all, err := a.friendList(id)
	if err != nil {
		return nil, 0, err
	}
	if cursor < 0 || cursor > int64(len(all)) {
		return nil, 0, ErrBadCursor
	}
	end := cursor + int64(a.PageSize)
	if end > int64(len(all)) {
		end = int64(len(all))
	}
	page := make([]int64, end-cursor)
	copy(page, all[cursor:end])
	next := end
	if next >= int64(len(all)) {
		next = 0
	}
	return page, next, nil
}

// friendList materializes the full, stable friend list of an account.
func (a *API) friendList(id int64) ([]int64, error) {
	if id == verifiedBotID {
		out := make([]int64, a.p.NumVerified())
		for v := range out {
			out[v] = VerifiedID(v)
		}
		return out, nil
	}
	v, ok := a.p.byID[id]
	if !ok {
		return nil, ErrUnknownUser
	}
	verified := a.p.graph.OutNeighbors(v)
	nPeriph := int(float64(len(verified)) * a.p.cfg.PeripheryFriendFactor)
	out := make([]int64, 0, len(verified)+nPeriph)
	for _, w := range verified {
		out = append(out, VerifiedID(int(w)))
	}
	// Deterministic periphery ids derived from the node index.
	h := uint64(v)*0x9e3779b97f4a7c15 ^ a.p.cfg.Seed
	for i := 0; i < nPeriph; i++ {
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
		out = append(out, peripheryIDBase+int64(h%1_000_000_000))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// UsersLookup returns profiles for up to 100 ids per call (unknown and
// periphery ids are silently dropped, as the real endpoint drops suspended
// accounts).
func (a *API) UsersLookup(ids []int64) ([]Profile, error) {
	if len(ids) > 100 {
		return nil, ErrTooMany
	}
	a.lookupLimiter.take(a.clock)
	a.Calls++
	if err := a.maybeFail(); err != nil {
		return nil, err
	}
	out := make([]Profile, 0, len(ids))
	for _, id := range ids {
		if v, ok := a.p.byID[id]; ok {
			out = append(out, a.p.profiles[v])
		}
	}
	return out, nil
}
