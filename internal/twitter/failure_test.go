package twitter

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCrawlSurvivesTransientFailures(t *testing.T) {
	p := smallPlatform(t, 900)
	truth, derr := DatasetFromPlatform(p)
	if derr != nil {
		t.Fatal(derr)
	}

	api := NewAPI(p)
	api.FailureRate = 0.15 // 15% of calls return 503
	ds, err := Crawl(api)
	if err != nil {
		t.Fatalf("crawl did not survive failure injection: %v", err)
	}
	if api.Failures == 0 {
		t.Fatal("failure injection inactive — test proves nothing")
	}
	// The recovered dataset must equal the ground truth exactly.
	if ds.Graph.NumNodes() != truth.Graph.NumNodes() ||
		ds.Graph.NumEdges() != truth.Graph.NumEdges() {
		t.Fatalf("crawl under failures diverged: %d/%d vs %d/%d nodes/edges",
			ds.Graph.NumNodes(), ds.Graph.NumEdges(),
			truth.Graph.NumNodes(), truth.Graph.NumEdges())
	}
}

func TestAPIInjectsFailuresDeterministically(t *testing.T) {
	p := smallPlatform(t, 300)
	a1 := NewAPI(p)
	a1.FailureRate = 0.5
	a2 := NewAPI(p)
	a2.FailureRate = 0.5
	for i := 0; i < 40; i++ {
		_, _, err1 := a1.FriendIDs(a1.VerifiedBotID(), 0)
		_, _, err2 := a2.FriendIDs(a2.VerifiedBotID(), 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("failure injection not deterministic")
		}
	}
	if a1.Failures == 0 {
		t.Fatal("no failures at 50% rate over 40 calls")
	}
}

func TestRetryGivesUpOnPersistentFailure(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	api.FailureRate = 1.0 // every call fails
	_, _, err := retryFriendIDs(api, newRetrier(), api.VerifiedBotID(), 0)
	if !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("want ErrServiceUnavailable after retries, got %v", err)
	}
	// Retries consumed: initial + crawlMaxRetries attempts.
	if api.Failures != crawlMaxRetries+1 {
		t.Fatalf("attempts = %d, want %d", api.Failures, crawlMaxRetries+1)
	}
}

func TestRetryDoesNotMaskHardErrors(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	if _, _, err := retryFriendIDs(api, newRetrier(), 424242, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("hard error should pass through, got %v", err)
	}
}

func TestFailuresConsumeRateBudget(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	api.FailureRate = 1.0
	start := api.Clock().Now()
	for i := 0; i < 16; i++ {
		api.FriendIDs(api.VerifiedBotID(), 0) //nolint:errcheck // failures expected
	}
	if api.Clock().Now().Sub(start) < windowLength {
		t.Fatal("failed calls must still consume the rate window")
	}
}

// TestRetryWaitsAreJitteredAndDeterministic pins the backoff schedule: waits
// carry equal jitter (uniform in [base/2, base]) and two fresh retriers
// replay the identical sequence, keeping crawls reproducible.
func TestRetryWaitsAreJitteredAndDeterministic(t *testing.T) {
	p := smallPlatform(t, 300)
	sample := func() []time.Duration {
		api := NewAPI(p)
		rt := newRetrier()
		var waits []time.Duration
		for attempt := 0; attempt < 5; attempt++ {
			before := api.Clock().Now()
			if err := rt.wait(api, attempt, ErrServiceUnavailable); err != nil {
				t.Fatalf("wait: %v", err)
			}
			waits = append(waits, api.Clock().Now().Sub(before))
		}
		return waits
	}
	a, b := sample(), sample()
	var jittered bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d not deterministic: %v vs %v", i, a[i], b[i])
		}
		base := 5 * time.Second << uint(i)
		if a[i] < base/2 || a[i] > base {
			t.Fatalf("wait %d = %v outside equal-jitter range [%v, %v]", i, a[i], base/2, base)
		}
		if a[i] != base {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("every wait landed exactly on its base — jitter inactive")
	}
}

// TestRetryBudgetExhaustion drains one retrier's cumulative budget and checks
// the terminal error both names the budget and wraps the transient failure
// that spent it, so callers can still errors.Is the root cause.
func TestRetryBudgetExhaustion(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	rt := newRetrier()
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			t.Fatal("budget never exhausted")
		}
		// Re-use a mid-sized exponent so exhaustion comes from accumulation,
		// not one monster wait.
		if err = rt.wait(api, 5, ErrServiceUnavailable); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("budget error must wrap the transient failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("error should describe the budget: %v", err)
	}
	if rt.spent > crawlRetryBudget {
		t.Fatalf("spent %v exceeds budget %v", rt.spent, crawlRetryBudget)
	}
}

// TestCrawlFailsWithBudgetErrorOnPersistentOutage runs a full crawl against
// an API that always 503s: the crawl must fail with a descriptive error
// rather than advancing the virtual clock forever.
func TestCrawlFailsWithBudgetErrorOnPersistentOutage(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	api.FailureRate = 1.0
	if _, err := Crawl(api); !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("persistent outage should surface ErrServiceUnavailable, got %v", err)
	}
}
