package twitter

import (
	"errors"
	"testing"
)

func TestCrawlSurvivesTransientFailures(t *testing.T) {
	p := smallPlatform(t, 900)
	truth := DatasetFromPlatform(p)

	api := NewAPI(p)
	api.FailureRate = 0.15 // 15% of calls return 503
	ds, err := Crawl(api)
	if err != nil {
		t.Fatalf("crawl did not survive failure injection: %v", err)
	}
	if api.Failures == 0 {
		t.Fatal("failure injection inactive — test proves nothing")
	}
	// The recovered dataset must equal the ground truth exactly.
	if ds.Graph.NumNodes() != truth.Graph.NumNodes() ||
		ds.Graph.NumEdges() != truth.Graph.NumEdges() {
		t.Fatalf("crawl under failures diverged: %d/%d vs %d/%d nodes/edges",
			ds.Graph.NumNodes(), ds.Graph.NumEdges(),
			truth.Graph.NumNodes(), truth.Graph.NumEdges())
	}
}

func TestAPIInjectsFailuresDeterministically(t *testing.T) {
	p := smallPlatform(t, 300)
	a1 := NewAPI(p)
	a1.FailureRate = 0.5
	a2 := NewAPI(p)
	a2.FailureRate = 0.5
	for i := 0; i < 40; i++ {
		_, _, err1 := a1.FriendIDs(a1.VerifiedBotID(), 0)
		_, _, err2 := a2.FriendIDs(a2.VerifiedBotID(), 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("failure injection not deterministic")
		}
	}
	if a1.Failures == 0 {
		t.Fatal("no failures at 50% rate over 40 calls")
	}
}

func TestRetryGivesUpOnPersistentFailure(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	api.FailureRate = 1.0 // every call fails
	_, _, err := retryFriendIDs(api, api.VerifiedBotID(), 0)
	if !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("want ErrServiceUnavailable after retries, got %v", err)
	}
	// Retries consumed: initial + crawlMaxRetries attempts.
	if api.Failures != crawlMaxRetries+1 {
		t.Fatalf("attempts = %d, want %d", api.Failures, crawlMaxRetries+1)
	}
}

func TestRetryDoesNotMaskHardErrors(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	if _, _, err := retryFriendIDs(api, 424242, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("hard error should pass through, got %v", err)
	}
}

func TestFailuresConsumeRateBudget(t *testing.T) {
	p := smallPlatform(t, 300)
	api := NewAPI(p)
	api.FailureRate = 1.0
	start := api.Clock().Now()
	for i := 0; i < 16; i++ {
		api.FriendIDs(api.VerifiedBotID(), 0) //nolint:errcheck // failures expected
	}
	if api.Clock().Now().Sub(start) < windowLength {
		t.Fatal("failed calls must still consume the rate window")
	}
}
