// Package twitter simulates the Twitter platform surface the paper's data
// acquisition depends on: user profiles with bios and audience metrics, the
// '@verified' account, a REST API with cursor pagination and 15-request/
// 15-minute rate windows driven by a virtual clock, a Firehose of daily user
// statistics over the paper's one-year collection window, and the crawler
// that reproduces the §III pipeline (query @verified → fetch profiles →
// filter English → fetch friend lists → induce the verified sub-graph).
//
// Everything is deterministic given the platform seed; no real network I/O
// occurs anywhere in the package.
package twitter

import (
	"fmt"
	"time"
)

// Category is a verified-user archetype; bios, screen names and activity
// priors derive from it. The mix mirrors the occupational themes the paper
// reads off the bio n-grams (journalism dominating, then sport, music,
// brands, government and weather outlets).
type Category uint8

// Verified-user archetypes.
const (
	CatJournalist Category = iota
	CatAthlete
	CatMusician
	CatActor
	CatBrand
	CatMediaOutlet
	CatGovernment
	CatWeather
	CatWriter
	CatPolitician
	CatInfluencer
	numCategories
)

// String names the category.
func (c Category) String() string {
	names := [...]string{
		"journalist", "athlete", "musician", "actor", "brand",
		"media-outlet", "government", "weather", "writer",
		"politician", "influencer",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// categoryWeights is the archetype mix; journalism's dominance is the
// paper's own observation ("being a pre-eminent journalist in an English
// media outlet seems to be one of the surest ways to get verified").
var categoryWeights = []float64{
	CatJournalist:  0.17,
	CatAthlete:     0.12,
	CatMusician:    0.09,
	CatActor:       0.08,
	CatBrand:       0.13,
	CatMediaOutlet: 0.08,
	CatGovernment:  0.05,
	CatWeather:     0.045,
	CatWriter:      0.06,
	CatPolitician:  0.05,
	CatInfluencer:  0.125,
}

// Profile is a simulated user record, the analogue of the REST API's user
// object.
type Profile struct {
	ID         int64
	ScreenName string
	Name       string
	Bio        string
	Lang       string // ISO code; the paper keeps "en" profiles only
	Verified   bool
	Category   Category

	// Audience metrics at the snapshot date (the four Figure 1 panels).
	Followers int64
	Friends   int64
	Statuses  int64
	Listed    int64

	// CreatedAt is the account creation time.
	CreatedAt time.Time
}

// Languages assigned to non-English profiles, with rough platform shares.
var nonEnglishLangs = []string{"es", "pt", "ja", "ar", "fr", "tr", "de", "hi", "ko", "it"}

// verifiedIDBase offsets verified user ids; periphery (non-verified) ids
// start at peripheryIDBase, keeping the two ranges disjoint so tests can
// classify an id at a glance.
const (
	verifiedIDBase   int64 = 1_000_000
	peripheryIDBase  int64 = 2_000_000_000
	verifiedBotID    int64 = 999_999 // the '@verified' account itself
	screenNameDigits       = 1000
)

// VerifiedID maps a graph node index to its simulated user id.
func VerifiedID(node int) int64 { return verifiedIDBase + int64(node) }

// NodeOfID maps a verified user id back to its node index, or -1.
func NodeOfID(id int64, n int) int {
	node := id - verifiedIDBase
	if node < 0 || node >= int64(n) {
		return -1
	}
	return int(node)
}

// IsPeripheryID reports whether the id belongs to the simulated non-verified
// periphery.
func IsPeripheryID(id int64) bool { return id >= peripheryIDBase }
