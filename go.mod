module elites

go 1.24
