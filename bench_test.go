// The benchmark harness regenerates every table and figure of the paper's
// evaluation on the canonical synthetic instance (20,000 verified users,
// seed 42; the paper's real network has 231,246 — all compared statistics
// are scale-free or reported with expected drift). Each benchmark times the
// analysis it names and prints a paper-vs-measured line into the benchmark
// log, which EXPERIMENTS.md records.
//
// Run everything:
//
//	go test -bench=. -benchmem
package elites

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"elites/internal/cache"
	"elites/internal/centrality"
	"elites/internal/core"
	"elites/internal/gen"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/powerlaw"
	"elites/internal/serve"
	"elites/internal/spectral"
	"elites/internal/stats"
	"elites/internal/text"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// benchN is the canonical instance size.
const benchN = 20000

var (
	fixOnce     sync.Once
	fixPlatform *twitter.Platform
	fixDataset  *twitter.Dataset
	fixActivity *timeseries.DailySeries
	fixGeneric  *gen.Result
)

func fixtures(b *testing.B) (*twitter.Platform, *twitter.Dataset, *timeseries.DailySeries, *gen.Result) {
	b.Helper()
	fixOnce.Do(func() {
		p, err := twitter.NewPlatform(twitter.DefaultPlatformConfig(benchN))
		if err != nil {
			panic(err)
		}
		fixPlatform = p
		ds, err := twitter.DatasetFromPlatform(p)
		if err != nil {
			panic(err)
		}
		fixDataset = ds
		fixActivity = p.ActivitySeries(p.EnglishNodes())
		g, err := gen.Twitter(benchN, 2)
		if err != nil {
			panic(err)
		}
		fixGeneric = g
	})
	return fixPlatform, fixDataset, fixActivity, fixGeneric
}

// --- §III dataset table ------------------------------------------------------

func BenchmarkDatasetSummary(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	var sum core.DatasetSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.Graph
		outDeg := g.OutDegrees()
		d := graph.SummarizeDegrees(outDeg)
		scc := graph.StronglyConnectedComponents(g)
		_, giant := scc.Largest()
		wcc := graph.WeaklyConnectedComponents(g)
		sum = core.DatasetSummary{
			Nodes: g.NumNodes(), Edges: g.NumEdges(), Density: g.Density(),
			Isolated: len(graph.IsolatedNodes(g)), AvgOutDegree: d.Mean,
			MaxOutDegree: d.Max, GiantSCCSize: giant,
			GiantSCCShare: float64(giant) / float64(g.NumNodes()),
			NumSCCs:       scc.NumComponents(), NumWCCs: wcc.NumComponents(),
		}
	}
	b.StopTimer()
	fmt.Printf("[§III] nodes=%d edges=%d density=%.5f (paper 0.00148 at 231k) "+
		"avgout=%.2f (342.55) max=%d (114815) isolated=%d giantSCC=%.2f%% (97.24%%) wccs=%d (6251)\n",
		sum.Nodes, sum.Edges, sum.Density, sum.AvgOutDegree, sum.MaxOutDegree,
		sum.Isolated, 100*sum.GiantSCCShare, sum.NumWCCs)
}

// --- §IV-A basic analysis ------------------------------------------------------

func BenchmarkBasicAnalysis(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	var clust, assort float64
	var attracting int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clust = graph.AverageLocalClustering(ds.Graph)
		assort = graph.DegreeAssortativity(ds.Graph)
		attracting = len(graph.AttractingComponents(ds.Graph, nil))
	}
	b.StopTimer()
	fmt.Printf("[§IV-A] clustering=%.4f (paper 0.1583) assortativity=%+.4f (-0.04) attracting=%d (6091 at 231k)\n",
		clust, assort, attracting)
}

// --- Figure 1 ------------------------------------------------------------------

func BenchmarkFigure1Distributions(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	var hists [4]*stats.Histogram
	metrics := []twitter.Metric{
		twitter.MetricFriends, twitter.MetricFollowers,
		twitter.MetricListed, twitter.MetricStatuses,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, m := range metrics {
			hists[j] = stats.NewLogHistogram(ds.MetricValues(m), 30)
		}
	}
	b.StopTimer()
	for j, m := range metrics {
		s, _ := stats.Summarize(ds.MetricValues(m))
		fmt.Printf("[Fig1%c] %-16s binned=%d median=%.0f p99=%.0f heavy-tail skew=%.1f\n",
			'a'+j, m.String(), hists[j].Total(), s.Median,
			quantileOf(ds.MetricValues(m), 0.99), s.Skewness)
	}
}

func quantileOf(xs []float64, p float64) float64 {
	c := append([]float64(nil), xs...)
	sortFloats(c)
	return stats.Quantile(c, p)
}

func sortFloats(xs []float64) {
	// insertion-free: delegate to stats ranks would be overkill; simple sort
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- Figure 2 / §IV-B out-degree power law ---------------------------------------

func BenchmarkFigure2OutDegreePowerLaw(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	rng := mathx.NewRNG(9)
	var fit *powerlaw.Fit
	var gof float64
	var vuong []*powerlaw.VuongResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = powerlaw.FitDiscrete(ds.Graph.OutDegrees(), nil)
		if err != nil {
			b.Fatal(err)
		}
		gof = fit.GoodnessOfFit(50, rng)
		vuong = fit.CompareAll()
	}
	b.StopTimer()
	fmt.Printf("[Fig2/§IV-B degree] alpha=%.3f (paper 3.24) xmin=%.0f (1334 at 231k) ntail=%d GoF p=%.3f (0.13)\n",
		fit.Alpha, fit.Xmin, fit.NTail, gof)
	for _, v := range vuong {
		fmt.Printf("[Fig2 vuong] vs %-11s LLR=%+.1f stat=%+.2f p=%.3g favours=%d (paper: 2-3 digit LLRs favouring power law)\n",
			v.Alternative, v.LogLikRatio, v.Statistic, v.PValue, v.Favours())
	}
	b.ReportMetric(fit.Alpha, "alpha")
	b.ReportMetric(gof, "gof-p")
}

// --- §IV-B eigenvalue power law ---------------------------------------------------

func BenchmarkEigenvaluePowerLaw(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	rng := mathx.NewRNG(11)
	var fit *powerlaw.Fit
	var nEv int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := spectral.NewLaplacianOperator(ds.Graph)
		evs, err := spectral.TopEigenvaluesLanczos(op, 150, 450, rng)
		if err != nil {
			b.Fatal(err)
		}
		nEv = len(evs)
		fit, err = powerlaw.FitContinuous(evs, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("[§IV-B eigen] top-%d Laplacian eigenvalues: alpha=%.3f (paper 3.18) xmin=%.1f (9377 at 231k) ntail=%d KS=%.4f\n",
		nEv, fit.Alpha, fit.Xmin, fit.NTail, fit.KS)
	b.ReportMetric(fit.Alpha, "alpha")
}

// --- §IV-C reciprocity --------------------------------------------------------------

func BenchmarkReciprocity(b *testing.B) {
	_, ds, _, generic := fixtures(b)
	var rv, rt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rv = graph.Reciprocity(ds.Graph)
		rt = graph.Reciprocity(generic.Graph)
	}
	b.StopTimer()
	fmt.Printf("[§IV-C] reciprocity verified=%.3f (paper 0.337) generic=%.3f (Kwak 0.221)\n", rv, rt)
	b.ReportMetric(rv, "verified")
	b.ReportMetric(rt, "generic")
}

// --- Figure 3 / §IV-D degrees of separation -------------------------------------------

func BenchmarkFigure3DegreesOfSeparation(b *testing.B) {
	_, ds, _, generic := fixtures(b)
	rng := mathx.NewRNG(13)
	var dv, dt *graph.DistanceDistribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dv = graph.SampledDistances(ds.Graph, 300, rng)
		dt = graph.SampledDistances(generic.Graph, 300, rng)
	}
	b.StopTimer()
	fmt.Printf("[Fig3/§IV-D] verified mean=%.3f (paper 2.74) effDiam=%.2f max=%d | generic mean=%.3f (Kwak 4.12)\n",
		dv.Mean(), dv.EffectiveDiameter(), dv.MaxObserved(), dt.Mean())
	b.ReportMetric(dv.Mean(), "verified-mean")
	b.ReportMetric(dt.Mean(), "generic-mean")
}

// --- Figure 4 + Tables I & II (bios) ----------------------------------------------------

func benchNGrams(b *testing.B, n int) *text.Counter {
	_, ds, _, _ := fixtures(b)
	var c *text.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = text.NewCounter(n)
		for _, bio := range ds.Bios() {
			c.AddText(bio)
		}
	}
	b.StopTimer()
	return c
}

func BenchmarkFigure4Wordcloud(b *testing.B) {
	c := benchNGrams(b, 1)
	cloud := text.BuildCloud(c.Top(30))
	out := text.RenderASCII(cloud, 72)
	fmt.Printf("[Fig4] %d unigram cloud entries; dominant: %s (%d)\n",
		len(cloud), cloud[0].Word, cloud[0].Count)
	_ = out
}

func BenchmarkTableIBigrams(b *testing.B) {
	c := benchNGrams(b, 2)
	top := c.Top(15)
	fmt.Printf("[TableI] top bigrams:")
	for i, g := range top {
		if i >= 5 {
			break
		}
		fmt.Printf(" %q=%d", g.Phrase(), g.Count)
	}
	fmt.Printf(" (paper: 'Official Twitter' 12166 leads)\n")
}

func BenchmarkTableIITrigrams(b *testing.B) {
	c := benchNGrams(b, 3)
	top := c.Top(15)
	fmt.Printf("[TableII] top trigrams:")
	for i, g := range top {
		if i >= 5 {
			break
		}
		fmt.Printf(" %q=%d", g.Phrase(), g.Count)
	}
	fmt.Printf(" (paper: 'Official Twitter Account' 5457 leads)\n")
}

// --- Figure 5 centrality correlations -----------------------------------------------------

func BenchmarkFigure5Centrality(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	rng := mathx.NewRNG(17)
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.Options{
			SkipEigen: true, SkipBootstrap: true,
			BetweennessSources: 256, DistanceSources: 10, Seed: 17,
		}
		var err error
		rep, err = core.NewCharacterizer(opts).Run(ds, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = rng
	}
	b.StopTimer()
	for _, p := range rep.Centrality {
		fmt.Printf("[Fig5] %-38s pearson=%+.3f spearman=%+.3f n=%d (paper: all positive, PR strongest)\n",
			p.Label, p.Pearson, p.Spearman, p.N)
	}
}

// --- Figure 6 calendar map -------------------------------------------------------------------

func BenchmarkFigure6CalendarMap(b *testing.B) {
	p, _, activity, _ := fixtures(b)
	var render string
	var wm [7]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render = activity.CalendarMap()
		wm = activity.WeekdayMeans()
	}
	b.StopTimer()
	weekday := (wm[1] + wm[2] + wm[3] + wm[4] + wm[5]) / 5
	fmt.Printf("[Fig6] calendar rendered (%d chars); sunday/weekday=%.3f (paper: Sundays reliably lower); english users=%d\n",
		len(render), wm[0]/weekday, len(p.EnglishNodes()))
}

// --- §V portmanteau -----------------------------------------------------------------------------

func BenchmarkPortmanteauTests(b *testing.B) {
	_, _, activity, _ := fixtures(b)
	var lbMax, bpMax float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb, err := timeseries.LjungBox(activity.Values, 185)
		if err != nil {
			b.Fatal(err)
		}
		bp, err := timeseries.BoxPierce(activity.Values, 185)
		if err != nil {
			b.Fatal(err)
		}
		lbMax = timeseries.MaxPValue(lb)
		bpMax = timeseries.MaxPValue(bp)
	}
	b.StopTimer()
	fmt.Printf("[§V portmanteau] LjungBox max p=%.3g (paper 3.81e-38) BoxPierce max p=%.3g (7.57e-38)\n",
		lbMax, bpMax)
}

// --- §V ADF ---------------------------------------------------------------------------------------

func BenchmarkADFStationarity(b *testing.B) {
	_, _, activity, _ := fixtures(b)
	var res *timeseries.ADFResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = timeseries.ADF(activity.Values, timeseries.RegConstantTrend, -1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("[§V ADF] stat=%.2f (paper -3.86) crit5=%.2f (-3.42) lags=%d stationary=%v\n",
		res.Statistic, res.Crit5, res.Lags, res.Stationary())
	b.ReportMetric(res.Statistic, "adf-stat")
}

// --- §V PELT --------------------------------------------------------------------------------------

func BenchmarkPELTChangepoints(b *testing.B) {
	_, _, activity, _ := fixtures(b)
	var cands []timeseries.SweepCandidate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = timeseries.PenaltySweep(activity.Values, 10, 400, 12, 7, 6)
	}
	b.StopTimer()
	fmt.Printf("[§V PELT] sweep candidates (paper: ~Dec 23-25 and ~first week of April):")
	for i, c := range cands {
		if i >= 4 {
			break
		}
		fmt.Printf(" %s(%.2f)", activity.Date(c.Index).Format("2006-01-02"), c.Stability)
	}
	fmt.Println()
}

// --- Full pipeline ----------------------------------------------------------------------------------

func BenchmarkFullCharacterization(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.Options{
			BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
			DistanceSources: 150, Seed: 23,
		}
		if _, err := core.NewCharacterizer(opts).Run(ds, activity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCharacterizationParallel contrasts the stage-graph scheduler
// across parallelism levels on the same workload: p=1 runs one stage at a
// time (stage-internal sharding still uses all cores), p=max bounds wall
// clock by the critical path. Reports are bit-identical at every level
// (per-stage derived RNG streams), so this measures pure scheduling gain.
func BenchmarkFullCharacterizationParallel(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	levels := []struct {
		label string
		par   int
	}{{"p=1", 1}, {"p=2", 2}, {fmt.Sprintf("p=max%d", runtime.GOMAXPROCS(0)), 0}}
	for _, lv := range levels {
		b.Run(lv.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{
					BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
					DistanceSources: 150, Seed: 23, Parallelism: lv.par,
				}
				if _, err := core.NewCharacterizer(opts).Run(ds, activity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCharacterizationCache contrasts the same full characterization
// cold (fresh cache directory every iteration: every cached stage misses,
// computes and stores) against warm (pre-populated directory: betweenness,
// both bootstraps, the distance sweep and the basic/mutual-core metric
// passes hydrate from the cache). Reports
// are byte-identical either way — the warm number is what a production
// re-analysis over an unchanged crawl pays. scripts/bench.sh records both
// into BENCH_results.json.
func BenchmarkCharacterizationCache(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	opts := func(dir string) core.Options {
		return core.Options{
			BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
			DistanceSources: 150, Seed: 23, CacheDir: dir,
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp(b.TempDir(), "cold")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := core.NewCharacterizer(opts(dir)).Run(ds, activity); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			cache.Release(dir) // each iteration's dir is throwaway
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		rep, err := core.NewCharacterizer(opts(dir)).Run(ds, activity)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cache == nil || len(rep.Cache.Misses) == 0 {
			b.Fatal("priming run did not populate the cache")
		}
		cc, err := cache.New(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Empty the in-process tier so every iteration pays the full
			// disk path (open, checksum, decode) — what a fresh-process
			// production re-run pays, which is the number this records.
			b.StopTimer()
			cc.DropMemory()
			b.StartTimer()
			rep, err := core.NewCharacterizer(opts(dir)).Run(ds, activity)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Cache.Hits) != 6 {
				b.Fatalf("warm run hits = %v", rep.Cache.Hits)
			}
		}
	})
}

// BenchmarkPipelineStages times every analysis stage in isolation through
// Options.Stages (each subset pulls in its transitive dependencies, so
// "summary" includes "components").
func BenchmarkPipelineStages(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	for _, stage := range core.StageNames() {
		b.Run(stage, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{
					BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
					DistanceSources: 150, Seed: 23, Stages: []string{stage},
				}
				if _, err := core.NewCharacterizer(opts).Run(ds, activity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBetweennessParallel contrasts the sharded Brandes run across
// worker budgets on the same sampled source set. Scores are bit-identical at
// every budget (fixed-layout source chunks, partials reduced in chunk
// order), so this measures pure scheduling gain inside one stage.
func BenchmarkBetweennessParallel(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			rng := mathx.NewRNG(31)
			for i := 0; i < b.N; i++ {
				centrality.ApproxBetweennessWorkers(ds.Graph, 256, rng, workers)
			}
		})
	}
}

// BenchmarkBootstrapParallel contrasts the CSN goodness-of-fit bootstrap
// across worker budgets on the canonical out-degree fit. The p-value is
// bit-identical at every budget (per-replicate derived RNG streams, integer
// exceedance counts), so this too measures pure scheduling gain.
func BenchmarkBootstrapParallel(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	fit, err := powerlaw.FitDiscrete(ds.Graph.OutDegrees(), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rng := mathx.NewRNG(43)
			for i := 0; i < b.N; i++ {
				fit.GoodnessOfFitWorkers(50, rng, workers)
			}
		})
	}
}

// --- §IV-C conjecture validation (paper future work) ---------------------------------------------------

func BenchmarkCoreReciprocityConjecture(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	var mca *core.MutualCoreAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mca = core.AnalyzeMutualCore(ds.Graph)
	}
	b.StopTimer()
	fmt.Printf("[§IV-C conjecture] core reciprocity=%.3f vs periphery=%.3f (k>=%d, %d core nodes) holds=%v\n",
		mca.CoreReciprocity, mca.PeripheryReciprocity, mca.CoreK, mca.CoreNodes, mca.ConjectureHolds())
	if len(mca.RichClub) > 0 {
		last := mca.RichClub[len(mca.RichClub)-1]
		fmt.Printf("[§IV-C richclub] φ_norm at k>%d: %.2f (elite interconnection)\n", last.K, last.PhiNorm)
	}
	if !mca.ConjectureHolds() {
		b.Error("§IV-C conjecture does not hold on the calibrated instance")
	}
}

// --- §V KPSS confirmation ----------------------------------------------------------------------------

func BenchmarkKPSSConfirmation(b *testing.B) {
	_, _, activity, _ := fixtures(b)
	var res *timeseries.KPSSResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = timeseries.KPSS(activity.Values, timeseries.RegConstantTrend, -1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// On this series ADF rejects the unit root while KPSS rejects strict
	// trend-stationarity — the classic both-reject signature of a series
	// with structural breaks, i.e. exactly the two §V change-points.
	fmt.Printf("[§V KPSS] stat=%.3f crit5=%.3f trend-stationary-null survives=%v "+
		"(ADF+KPSS both rejecting = break signature, consistent with the PELT change-points)\n",
		res.Statistic, res.Crit5, res.StationaryAt5())
	dec, err := timeseries.Decompose(activity)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Printf("[§V decomposition] weekly seasonal strength=%.3f\n", dec.SeasonalStrength)
}

// --- Ablations ---------------------------------------------------------------------------------------

// BenchmarkAblationBetweennessSampling: how many Brandes sources until the
// Figure 5 betweenness ranking stabilizes.
func BenchmarkAblationBetweennessSampling(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	refRng := mathx.NewRNG(31)
	ref := centrality.ApproxBetweenness(ds.Graph, 1024, refRng)
	for _, k := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("sources=%d", k), func(b *testing.B) {
			rng := mathx.NewRNG(uint64(37 + k))
			var approx []float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				approx = centrality.ApproxBetweenness(ds.Graph, k, rng)
			}
			b.StopTimer()
			rho, _ := stats.Spearman(approx, ref)
			b.ReportMetric(rho, "spearman-vs-1024")
		})
	}
}

// BenchmarkAblationEigensolvers: Lanczos vs power iteration with deflation
// for the §IV-B spectrum.
func BenchmarkAblationEigensolvers(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	op := spectral.NewLaplacianOperator(ds.Graph)
	const k = 25
	b.Run("lanczos", func(b *testing.B) {
		rng := mathx.NewRNG(41)
		var evs []float64
		for i := 0; i < b.N; i++ {
			var err error
			evs, err = spectral.TopEigenvaluesLanczos(op, k, 3*k, rng)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(evs[0], "lambda1")
	})
	b.Run("power-deflation", func(b *testing.B) {
		rng := mathx.NewRNG(43)
		var evs []float64
		for i := 0; i < b.N; i++ {
			var err error
			evs, err = spectral.TopEigenvaluesPower(op, k, 200, 1e-8, rng)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(evs[0], "lambda1")
	})
}

// BenchmarkAblationChangepointAlgos: PELT vs binary segmentation.
func BenchmarkAblationChangepointAlgos(b *testing.B) {
	_, _, activity, _ := fixtures(b)
	beta := timeseries.BICPenalty(activity.Len())
	b.Run("pelt", func(b *testing.B) {
		var cps []int
		for i := 0; i < b.N; i++ {
			cps = timeseries.PELT(activity.Values, beta, 7)
		}
		b.ReportMetric(float64(len(cps)), "changepoints")
	})
	b.Run("binseg", func(b *testing.B) {
		var cps []int
		for i := 0; i < b.N; i++ {
			cps = timeseries.BinarySegmentation(activity.Values, beta, 7)
		}
		b.ReportMetric(float64(len(cps)), "changepoints")
	})
}

// BenchmarkAblationXminScan: CSN fit stability versus xmin-scan granularity.
func BenchmarkAblationXminScan(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	deg := ds.Graph.OutDegrees()
	for _, cands := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("candidates=%d", cands), func(b *testing.B) {
			var fit *powerlaw.Fit
			for i := 0; i < b.N; i++ {
				var err error
				fit, err = powerlaw.FitDiscrete(deg, &powerlaw.Options{MaxXminCandidates: cands})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(fit.Alpha, "alpha")
			b.ReportMetric(fit.Xmin, "xmin")
		})
	}
}

// BenchmarkAblationReciprocityDial: the generator's mutual-fraction dial φ
// against the closed-form prediction r = 2φ/(1+φ).
func BenchmarkAblationReciprocityDial(b *testing.B) {
	for _, phi := range []float64{0.10, 0.182, 0.30} {
		b.Run(fmt.Sprintf("phi=%.3f", phi), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				cfg := gen.VerifiedDefaults(5000)
				cfg.MutualFraction = phi
				cfg.Seed = uint64(100 + i)
				res, err := gen.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r = graph.Reciprocity(res.Graph)
			}
			b.StopTimer()
			pred := 2 * phi / (1 + phi)
			b.ReportMetric(r, "measured")
			b.ReportMetric(pred, "predicted")
			if math.Abs(r-pred) > 0.08 {
				b.Errorf("dial broken: measured %v vs predicted %v", r, pred)
			}
		})
	}
}

// --- serving layer -----------------------------------------------------------

// BenchmarkServeRequest contrasts report request latency through the full
// serving stack — router, body memo, coalescer, admission gate, pipeline,
// encoding — cold (fresh cache directory each iteration: the battery
// computes) versus warm (one priming request, then every request serves
// from the encoded-body memo without touching the pipeline). The warm
// number is what steady-state production traffic pays per request;
// scripts/bench.sh records both into BENCH_results.json.
func BenchmarkServeRequest(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	newServer := func(dir string) *serve.Server {
		s := serve.New(serve.Config{Options: core.Options{
			BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
			DistanceSources: 150, Seed: 23, CacheDir: dir,
		}})
		if err := s.RegisterDataset("bench", ds, activity, "bench"); err != nil {
			b.Fatal(err)
		}
		return s
	}
	request := func(ts *httptest.Server) {
		resp, err := ts.Client().Get(ts.URL + "/v1/datasets/bench/report")
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("report: %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp(b.TempDir(), "servecold")
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(newServer(dir))
			b.StartTimer()
			request(ts)
			b.StopTimer()
			ts.Close()
			cache.Release(dir)
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		ts := httptest.NewServer(newServer(dir))
		defer ts.Close()
		defer cache.Release(dir)
		request(ts) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(ts)
		}
	})
}

// --- feature matrix ----------------------------------------------------------

// BenchmarkFeatureMatrix times the bulk per-user feature pass (degrees,
// core membership, centrality percentiles, ego clustering, tail membership,
// scorer) on the canonical instance across worker budgets. The matrix is
// bit-identical at every budget (fixed ShardRows-wide chunks reduced in
// chunk order), so this measures pure sharding gain.
func BenchmarkFeatureMatrix(b *testing.B) {
	_, ds, _, _ := fixtures(b)
	DefaultScorer() // train once outside the timed region
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ComputeFeatures(ds, FeatureOptions{
					BetweennessSources: 128, Seed: 23, Parallelism: workers,
				})
			}
		})
	}
}

// BenchmarkServeUserBatch times warm users:batch requests through the full
// serving stack. "body-memo" repeats one rank list (the response bytes come
// straight from the encoded-body memo); "shards" rotates the rank list on a
// fresh server over a primed cache directory, so every request decodes or
// reuses precomputed feature shards — neither path runs the pipeline.
func BenchmarkServeUserBatch(b *testing.B) {
	_, ds, activity, _ := fixtures(b)
	opts := core.Options{
		BootstrapReps: 25, EigenK: 100, BetweennessSources: 128,
		DistanceSources: 150, Seed: 23,
	}
	newServer := func(dir string) *serve.Server {
		o := opts
		o.CacheDir = dir
		s := serve.New(serve.Config{Options: o})
		if err := s.RegisterDataset("bench", ds, activity, "bench"); err != nil {
			b.Fatal(err)
		}
		return s
	}
	post := func(ts *httptest.Server, body string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/datasets/bench/users:batch",
			"application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("users:batch: %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
	}

	dir := b.TempDir()
	defer cache.Release(dir)
	prime := httptest.NewServer(newServer(dir))
	post(prime, `{"ranks":[1,2,3]}`) // cold run populates the shard cache
	prime.Close()

	b.Run("body-memo", func(b *testing.B) {
		ts := httptest.NewServer(newServer(dir))
		defer ts.Close()
		post(ts, `{"ranks":[1,2,3]}`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(ts, `{"ranks":[1,2,3]}`)
		}
	})
	b.Run("shards", func(b *testing.B) {
		ts := httptest.NewServer(newServer(dir))
		defer ts.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A distinct rank list each iteration defeats the body memo, so
			// the rows resolve through the shard tier every time.
			r := 1 + i%benchN
			post(ts, fmt.Sprintf(`{"ranks":[%d,%d,%d]}`, r, 1+(r+97)%benchN, 1+(r+4211)%benchN))
		}
	})
}
