#!/bin/sh
# traceview.sh — pretty-print a -trace-out JSONL span file as indented
# duration trees, one per trace (the same shape slow-request log dumps
# and obs.RenderTree produce):
#
#   trace 4bf92f3577b34da6a3ce929d0e0e4736
#     router.request 12.4ms status=200
#       router.attempt 3.1ms worker=127.0.0.1:9001 [retry]
#       serve.report 8.9ms
#         pipeline 8.2ms
#           stage.degree 0.4ms cache_hit=true
#
# Usage:
#   sh scripts/traceview.sh trace.jsonl            # all traces
#   sh scripts/traceview.sh trace.jsonl <traceid>  # one trace
#
# Pure POSIX sh + awk over the flat JSON lines obs emits (one object per
# line, known key order not assumed). Events render as [name] suffixes;
# the service attribute is elided like RenderTree does.
set -eu

FILE=${1:?usage: traceview.sh trace.jsonl [traceid]}
WANT=${2:-}

awk -v want="$WANT" '
function jstr(line, key,   re, v) {
  # Extract a top-level string value: "key":"value" (values never
  # contain escaped quotes in obs output: ids and names are hex/idents).
  re = "\"" key "\":\"[^\"]*\""
  if (match(line, re) == 0) return ""
  v = substr(line, RSTART, RLENGTH)
  sub("^\"" key "\":\"", "", v); sub("\"$", "", v)
  return v
}
function jnum(line, key,   re, v) {
  re = "\"" key "\":-?[0-9]+"
  if (match(line, re) == 0) return 0
  v = substr(line, RSTART, RLENGTH)
  sub("^\"" key "\":", "", v)
  return v + 0
}
function attrs_of(line,   re, blk, out, k, v) {
  # The span attrs object: "attrs":{"k":"v",...} — first {...} after key.
  re = "\"attrs\":\\{[^}]*\\}"
  if (match(line, re) == 0) return ""
  blk = substr(line, RSTART, RLENGTH)
  sub("^\"attrs\":\\{", "", blk); sub("\\}$", "", blk)
  out = ""
  while (match(blk, /"[^"]+":"[^"]*"/) > 0) {
    kv = substr(blk, RSTART, RLENGTH)
    blk = substr(blk, RSTART + RLENGTH)
    k = kv; sub(/^"/, "", k); sub(/":".*$/, "", k)
    v = kv; sub(/^"[^"]+":"/, "", v); sub(/"$/, "", v)
    if (k != "service") out = out " " k "=" v
  }
  return out
}
function events_of(line,   rest, out, name) {
  # Event names: every "name":"..." after the events key.
  if (match(line, /"events":\[/) == 0) return ""
  rest = substr(line, RSTART)
  out = ""
  while (match(rest, /"name":"[^"]*"/) > 0) {
    name = substr(rest, RSTART, RLENGTH)
    rest = substr(rest, RSTART + RLENGTH)
    sub(/^"name":"/, "", name); sub(/"$/, "", name)
    out = out " [" name "]"
  }
  return out
}
function fmtdur(us) {
  if (us >= 1000000) return sprintf("%.2fs", us / 1000000)
  if (us >= 1000)    return sprintf("%.1fms", us / 1000)
  return us "us"
}
function walk(span, depth,   i, n, kids, pad) {
  pad = ""
  for (i = 0; i < depth; i++) pad = pad "  "
  printf "%s%s %s%s%s\n", pad, name[span], fmtdur(dur[span]), attr[span], evs[span]
  n = split(childof[span], kids, SUBSEP)
  for (i = 1; i <= n; i++) if (kids[i] != "") walk(kids[i], depth + 1)
}
{
  # The span attrs block can contain "name":"...": cut events out first
  # when extracting span fields, by using the earliest matches — span
  # name/ids precede attrs/events in obs output, but do not rely on it:
  # take the trace/span/parent via dedicated keys (unique at top level).
  tr = jstr($0, "trace"); sp = jstr($0, "span")
  if (tr == "" || sp == "") next
  if (want != "" && tr != want) next
  nm = jstr($0, "name")        # first "name" key is the span name
  seen[++count] = sp
  trace[sp] = tr; name[sp] = nm; parent[sp] = jstr($0, "parent")
  start[sp] = jnum($0, "start_us"); dur[sp] = jnum($0, "dur_us")
  attr[sp] = attrs_of($0); evs[sp] = events_of($0)
  if (!(tr in torder)) { torder[tr] = ++ntr; tlist[ntr] = tr }
}
END {
  for (t = 1; t <= ntr; t++) {
    tr = tlist[t]
    printf "trace %s\n", tr
    # Children lists in input (≈ start) order; roots are spans whose
    # parent is absent from the file.
    for (i = 1; i <= count; i++) {
      sp = seen[i]
      if (trace[sp] != tr) continue
      p = parent[sp]
      if (p != "" && (p in name) && trace[p] == tr)
        childof[p] = (childof[p] == "" ? sp : childof[p] SUBSEP sp)
    }
    for (i = 1; i <= count; i++) {
      sp = seen[i]
      if (trace[sp] != tr) continue
      p = parent[sp]
      if (p == "" || !(p in name) || trace[p] != tr) walk(sp, 1)
    }
    for (sp in childof) delete childof[sp]
  }
  if (count == 0) print "no spans" (want == "" ? "" : " for trace " want)
}
' "$FILE"
