#!/bin/sh
# fleetload.sh — load harness for a running eliterouter.
#
# Drives N sequential requests at the router, spreading them over the
# report identities of one dataset, and reports what the fleet's
# robustness machinery did with them: status-code mix, latency
# percentiles (p50/p95/p99), degraded serves, and the deltas of the
# router's retry / hedge / failover / shed counters over the run.
#
# Usage:
#   sh scripts/fleetload.sh [url] [n] [dataset]
#     url      router base URL   (default http://127.0.0.1:8080)
#     n        request count     (default 200)
#     dataset  dataset id        (default demo)
#
# Typical session:
#   eliteserve -addr :9001 -gen demo=verified:10000:42 -cache /tmp/ec &
#   eliteserve -addr :9002 -gen demo=verified:10000:42 -cache /tmp/ec &
#   eliterouter -addr :8080 -worker 127.0.0.1:9001 -worker 127.0.0.1:9002 \
#     -cache /tmp/ec &
#   sh scripts/fleetload.sh http://127.0.0.1:8080 200 demo
set -eu

URL=${1:-http://127.0.0.1:8080}
N=${2:-200}
DS=${3:-demo}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

scrape() {
  curl -sf "$URL/metrics" | awk -v name="$1" '$1 == name {print $2; found=1} END {if (!found) print 0}'
}

curl -sf "$URL/healthz" >/dev/null || { echo "router at $URL is not answering /healthz"; exit 1; }

R0=$(scrape eliterouter_retries_total)
H0=$(scrape eliterouter_hedges_total)
F0=$(scrape eliterouter_failovers_total)
D0=$(scrape eliterouter_degraded_total)
S0=$(scrape eliterouter_shed_total)

T1="/v1/datasets/$DS/report?stages=summary"
T2="/v1/datasets/$DS/report?stages=summary,degree"
T3="/v1/datasets/$DS/report?stages=summary&format=text"
T4="/v1/datasets/$DS"

: >"$TMP/lat"
: >"$TMP/codes"
degraded=0
i=0
while [ "$i" -lt "$N" ]; do
  i=$((i + 1))
  case $((i % 4)) in
    0) t=$T1 ;; 1) t=$T2 ;; 2) t=$T3 ;; 3) t=$T4 ;;
  esac
  out=$(curl -s -o /dev/null -D "$TMP/hdr" \
    -w '%{http_code} %{time_total}' "$URL$t" || echo "000 0")
  echo "${out% *}" >>"$TMP/codes"
  echo "${out#* }" >>"$TMP/lat"
  if grep -qi '^X-Elites-Degraded: true' "$TMP/hdr"; then
    degraded=$((degraded + 1))
  fi
done

echo "== fleetload: $N requests against $URL =="
echo "-- status codes --"
sort "$TMP/codes" | uniq -c | sort -rn

echo "-- latency --"
sort -g "$TMP/lat" | awk -v n="$N" '
  {v[NR] = $1; sum += $1}
  END {
    printf "  mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
      sum/n*1000, v[int(n*0.50)]*1000, v[int(n*0.95)]*1000,
      v[int(n*0.99)]*1000, v[n]*1000
  }'

R1=$(scrape eliterouter_retries_total)
H1=$(scrape eliterouter_hedges_total)
F1=$(scrape eliterouter_failovers_total)
D1=$(scrape eliterouter_degraded_total)
S1=$(scrape eliterouter_shed_total)
UP=$(scrape eliterouter_workers_available)

echo "-- fleet machinery (deltas over this run) --"
echo "  retries   $((R1 - R0))"
echo "  hedges    $((H1 - H0))"
echo "  failovers $((F1 - F0))"
echo "  degraded  $((D1 - D0))   (responses with X-Elites-Degraded seen here: $degraded)"
echo "  shed      $((S1 - S0))"
echo "  workers available now: $UP"

if [ "$((S1 - S0))" -gt 0 ]; then
  echo "WARNING: requests were shed — the last-known-good floor has holes" >&2
  exit 2
fi
