#!/bin/sh
# bench.sh — run the repo's heavy benchmarks and record the results as
# machine-readable JSON, establishing a perf baseline future PRs can diff
# against.
#
# Covered: sharded Brandes betweenness (worker budgets 1/2/4/8), the CSN
# goodness-of-fit bootstrap (1/2/8), the full characterization cold vs.
# warm result cache, the HTTP serving layer's cold vs. warm report
# request latency (eliteserve's stack: router, coalescer, admission,
# pipeline, encoding), the bulk per-user feature matrix pass (1/8), and
# warm users:batch requests (encoded-body memo vs. precomputed feature
# shards).
#
# Benchmark names are normalized (the trailing -GOMAXPROCS suffix is
# stripped) so baselines survive a change in core count; allocation stats
# (B/op, allocs/op) are recorded for benchmarks that report them.
#
#   sh scripts/bench.sh                 # writes BENCH_results.json
#   sh scripts/bench.sh compare         # fresh run diffed against the
#                                       # committed baseline; prints per-
#                                       # benchmark deltas, writes nothing
#   BENCHTIME=5x sh scripts/bench.sh    # more iterations
#   OUT=/tmp/b.json sh scripts/bench.sh # alternate output path
#   PATTERN=BenchmarkBetweenness sh scripts/bench.sh compare
#                                       # restrict to one benchmark family
#   GATE_PATTERN=Betweenness GATE_MAX=10 sh scripts/bench.sh compare
#                                       # compare exits 1 if any matching
#                                       # benchmark regresses > 10% — the
#                                       # CI perf gate
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-record}"
BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_results.json}"
BASELINE="${BASELINE:-BENCH_results.json}"
PATTERN="${PATTERN:-BenchmarkBetweennessParallel|BenchmarkBootstrapParallel|BenchmarkCharacterizationCache|BenchmarkServeRequest|BenchmarkFeatureMatrix|BenchmarkServeUserBatch}"
GATE_PATTERN="${GATE_PATTERN:-}"
GATE_MAX="${GATE_MAX:-}"

raw=$(mktemp)
json=$(mktemp)
trap 'rm -f "$raw" "$json"' EXIT

# No pipe: a compile error or benchmark failure must abort (set -e) before
# the baseline file is overwritten.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . > "$raw"
cat "$raw" >&2

case "$MODE" in
record)
    awk -v go_version="$(go version | awk '{print $3}')" \
        -v benchtime="$BENCHTIME" '
    BEGIN { n = 0 }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        sub(/-[0-9]+$/, "", $1)   # strip the GOMAXPROCS suffix
        name[n] = $1; iters[n] = $2; ns[n] = $3
        bytes[n] = ""; allocs[n] = ""
        for (i = 5; i < NF; i++) {
            if ($(i + 1) == "B/op")      bytes[n] = $i
            if ($(i + 1) == "allocs/op") allocs[n] = $i
        }
        n++
    }
    END {
        if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
        printf "{\n"
        printf "  \"go\": \"%s\",\n", go_version
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"results\": [\n"
        for (i = 0; i < n; i++) {
            printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", \
                name[i], iters[i], ns[i]
            if (allocs[i] != "")
                printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes[i], allocs[i]
            printf "}%s\n", (i < n - 1 ? "," : "")
        }
        printf "  ]\n"
        printf "}\n"
    }' "$raw" > "$json"
    mv "$json" "$OUT"
    trap 'rm -f "$raw"' EXIT
    echo "wrote $OUT" >&2
    ;;
compare)
    # Diff the fresh run against the committed baseline: one line per
    # benchmark with old/new ns/op and the delta (negative = faster).
    # Baselines recorded on different hardware drift wholesale; the per-
    # benchmark pattern is what matters. With GATE_PATTERN/GATE_MAX set,
    # exit non-zero when a matching benchmark regresses past the bound.
    [ -f "$BASELINE" ] || { echo "bench.sh: no baseline $BASELINE to compare against" >&2; exit 1; }
    awk -v baseline="$BASELINE" -v gate_pat="$GATE_PATTERN" -v gate_max="$GATE_MAX" '
    # Pass 1: the baseline JSON (our own writer format — one result per line).
    FILENAME == baseline {
        if (match($0, /"name": "[^"]+"/)) {
            name = substr($0, RSTART + 9, RLENGTH - 10)
            sub(/-[0-9]+$/, "", name)   # old baselines kept the suffix
            if (match($0, /"ns_per_op": [0-9]+/))
                base[name] = substr($0, RSTART + 13, RLENGTH - 13)
        }
        next
    }
    # Pass 2: the fresh `go test -bench` output.
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        sub(/-[0-9]+$/, "", $1)
        fresh[$1] = $3
        order[m++] = $1
    }
    END {
        if (m == 0) { print "bench.sh: no fresh results parsed" > "/dev/stderr"; exit 1 }
        printf "%-48s %14s %14s %9s\n", "benchmark", "baseline", "fresh", "delta"
        worst = 0; gate_worst = ""; gate_fail = 0
        for (i = 0; i < m; i++) {
            name = order[i]
            if (!(name in base)) {
                printf "%-48s %14s %14.0f %9s\n", name, "(new)", fresh[name], "-"
                continue
            }
            d = 100 * (fresh[name] - base[name]) / base[name]
            if (d > worst) worst = d
            if (gate_pat != "" && gate_max != "" && name ~ gate_pat && d > gate_max + 0) {
                gate_fail = 1
                gate_worst = gate_worst sprintf("  %s %+.1f%%\n", name, d)
            }
            printf "%-48s %14.0f %14.0f %+8.1f%%\n", name, base[name], fresh[name], d
        }
        for (name in base)
            if (!(name in fresh))
                printf "%-48s %14.0f %14s %9s\n", name, base[name], "(gone)", "-"
        printf "worst regression: %+.1f%%\n", worst
        if (gate_fail) {
            printf "bench.sh: gate %s exceeded %s%%:\n%s", gate_pat, gate_max, gate_worst > "/dev/stderr"
            exit 1
        }
    }' "$BASELINE" "$raw"
    ;;
*)
    echo "bench.sh: unknown mode '$MODE' (want: record or compare)" >&2
    exit 1
    ;;
esac
