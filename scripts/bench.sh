#!/bin/sh
# bench.sh — run the repo's heavy benchmarks and record the results as
# machine-readable JSON, establishing a perf baseline future PRs can diff
# against.
#
# Covered: sharded Brandes betweenness (worker budgets 1/2/8), the CSN
# goodness-of-fit bootstrap (1/2/8), and the full characterization cold
# vs. warm result cache.
#
#   sh scripts/bench.sh                 # writes BENCH_results.json
#   BENCHTIME=5x sh scripts/bench.sh    # more iterations
#   OUT=/tmp/b.json sh scripts/bench.sh # alternate output path
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_results.json}"
PATTERN='BenchmarkBetweennessParallel|BenchmarkBootstrapParallel|BenchmarkCharacterizationCache'

raw=$(mktemp)
json=$(mktemp)
trap 'rm -f "$raw" "$json"' EXIT

# No pipe: a compile error or benchmark failure must abort (set -e) before
# the baseline file is overwritten.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . > "$raw"
cat "$raw" >&2

awk -v go_version="$(go version | awk '{print $3}')" \
    -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name[n] = $1; iters[n] = $2; ns[n] = $3; n++
}
END {
    if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
            name[i], iters[i], ns[i], (i < n - 1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' "$raw" > "$json"
mv "$json" "$OUT"
trap 'rm -f "$raw"' EXIT

echo "wrote $OUT" >&2
