#!/bin/sh
# check_package_comments.sh — fail if any Go package lacks a package-level
# doc comment (the revive "package-comments" rule, without the dependency).
#
# A package passes if at least one of its non-test .go files has a comment
# line immediately preceding its `package` clause. Run from the repo root.
set -eu

fail=0
for dir in $(find . -name '*.go' ! -path './.git/*' -exec dirname {} \; | sort -u); do
    ok=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        [ -e "$f" ] || continue
        # A doc comment is a // or */ line directly above `package X`.
        if awk '
            /^package[ \t]/ { if (prev ~ /^\/\// || prev ~ /\*\/[ \t]*$/) found = 1; exit }
            { if ($0 != "") prev = $0 }
            END { exit found ? 0 : 1 }
        ' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" -eq 0 ]; then
        echo "missing package comment: $dir"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "every package needs a doc comment (see docs/ARCHITECTURE.md and godoc conventions)" >&2
    exit 1
fi
echo "package comments: OK"
