#!/bin/sh
# chaos.sh — local chaos rehearsal for the serving stack.
#
# Runs the chaos test matrix under the race detector, then boots a real
# eliteserve with an injected stage fault and walks the degraded-serving
# contract end to end (the same sequence CI's "degraded serving smoke"
# step pins): degraded 200 + Warning header + banner, the
# eliteserve_degraded_total metric, and a clean follow-up body
# byte-identical to eliteanalyze stdout.
#
# Usage: sh scripts/chaos.sh [port]   (default 8097)
set -eu

PORT=${1:-8097}
TMP=$(mktemp -d)
trap 'kill $SERVE_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== chaos test matrix (-race) =="
go test -race -count=1 \
  -run 'Chaos|Fault|Breaker|Panic|Retry|Degraded' \
  ./internal/faults/ ./internal/pipeline/ ./internal/cache/ \
  ./internal/serve/ ./internal/twitter/

echo "== degraded serving rehearsal =="
go build -o "$TMP/elitegen" ./cmd/elitegen
go build -o "$TMP/eliteserve" ./cmd/eliteserve
go build -o "$TMP/eliteanalyze" ./cmd/eliteanalyze
"$TMP/elitegen" -n 2000 -seed 7 -out "$TMP/ds" >/dev/null 2>&1

"$TMP/eliteserve" -addr "127.0.0.1:$PORT" -data "demo=$TMP/ds" \
  -cache "$TMP/cache" -async-after 0 \
  -faults 'stage:degree=error' 2>"$TMP/serve.err" &
SERVE_PID=$!
i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "server never came up"; cat "$TMP/serve.err"; exit 1; }
  sleep 0.2
done

curl -sf "http://127.0.0.1:$PORT/v1/datasets/demo/report?format=text" \
  -D "$TMP/headers" -o "$TMP/degraded.out"
grep -q 'DEGRADED REPORT' "$TMP/degraded.out"
grep -qi '^Warning: 199' "$TMP/headers"
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q 'eliteserve_degraded_total 1'
echo "degraded response: banner + Warning header + metric OK"

curl -sf "http://127.0.0.1:$PORT/v1/datasets/demo/report?format=text" -o "$TMP/clean.out"
"$TMP/eliteanalyze" -data "$TMP/ds" >"$TMP/analyze.out"
cmp "$TMP/clean.out" "$TMP/analyze.out"
echo "post-fault clean body: byte-identical to eliteanalyze"
echo "chaos rehearsal: OK"
