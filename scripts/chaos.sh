#!/bin/sh
# chaos.sh — local chaos rehearsal for the serving stack and the fleet.
#
# Default mode runs the chaos test matrix under the race detector, then
# boots a real eliteserve with an injected stage fault and walks the
# degraded-serving contract end to end (the same sequence CI's "degraded
# serving smoke" step pins): degraded 200 + Warning header + banner, the
# eliteserve_degraded_total metric, and a clean follow-up body
# byte-identical to eliteanalyze stdout.
#
# Fleet mode ("chaos.sh fleet") rehearses the router's degradation ladder
# with real processes: two eliteserve workers behind an eliterouter with
# injected connection drops, one worker killed mid-load. Every request
# must come back 200 and the fleet metrics must show the ejection —
# the same sequence CI's "fleet smoke" step pins.
#
# Usage: sh scripts/chaos.sh [port]          (default 8097)
#        sh scripts/chaos.sh fleet [port]
set -eu

MODE=single
if [ "${1:-}" = "fleet" ]; then
  MODE=fleet
  shift
fi
PORT=${1:-8097}
TMP=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

wait_healthz() {
  i=0
  until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "server on :$1 never came up"; cat "$TMP"/*.err 2>/dev/null; exit 1; }
    sleep 0.2
  done
}

echo "== chaos test matrix (-race) =="
go test -race -count=1 \
  -run 'Chaos|Fault|Breaker|Panic|Retry|Degraded|Hedge|Probe|Scatter|Rendezvous|Drain' \
  ./internal/faults/ ./internal/pipeline/ ./internal/cache/ \
  ./internal/serve/ ./internal/twitter/ ./internal/fleet/

go build -o "$TMP/elitegen" ./cmd/elitegen
go build -o "$TMP/eliteserve" ./cmd/eliteserve
"$TMP/elitegen" -n 2000 -seed 7 -out "$TMP/ds" >/dev/null 2>&1

if [ "$MODE" = fleet ]; then
  echo "== fleet failover rehearsal =="
  go build -o "$TMP/eliterouter" ./cmd/eliterouter
  W1=$((PORT + 1))
  W2=$((PORT + 2))
  "$TMP/eliteserve" -addr "127.0.0.1:$W1" -data "demo=$TMP/ds" \
    -cache "$TMP/cache" -async-after 0 2>"$TMP/w1.err" &
  W1_PID=$!
  PIDS="$PIDS $W1_PID"
  "$TMP/eliteserve" -addr "127.0.0.1:$W2" -data "demo=$TMP/ds" \
    -cache "$TMP/cache" -async-after 0 2>"$TMP/w2.err" &
  W2_PID=$!
  PIDS="$PIDS $W2_PID"
  wait_healthz "$W1"
  wait_healthz "$W2"

  # Injected connection drops against worker 1 on top of the kill below:
  # the retry/breaker path absorbs both.
  "$TMP/eliterouter" -addr "127.0.0.1:$PORT" \
    -worker "127.0.0.1:$W1" -worker "127.0.0.1:$W2" \
    -cache "$TMP/cache" -probe-interval 200ms \
    -faults "net:127.0.0.1:$W1=drop:times=4:after=6" 2>"$TMP/router.err" &
  PIDS="$PIDS $!"
  wait_healthz "$PORT"

  T1="/v1/datasets/demo/report?stages=summary"
  T2="/v1/datasets/demo/report?stages=summary,degree"
  T3="/v1/datasets/demo"
  T4="/v1/datasets"

  # Warm every identity once (arms last-known-good degraded serving).
  for t in "$T1" "$T2" "$T3" "$T4"; do
    curl -sf "http://127.0.0.1:$PORT$t" >/dev/null
  done

  i=0
  while [ "$i" -lt 60 ]; do
    i=$((i + 1))
    if [ "$i" -eq 30 ]; then
      echo "killing worker 1 (pid $W1_PID) mid-load"
      kill "$W1_PID"
    fi
    case $((i % 4)) in
      0) t=$T1 ;; 1) t=$T2 ;; 2) t=$T3 ;; 3) t=$T4 ;;
    esac
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT$t")
    if [ "$code" != 200 ]; then
      echo "request $i ($t) answered $code, want 200"
      curl -s "http://127.0.0.1:$PORT/fleet/workers" || true
      exit 1
    fi
  done
  echo "60/60 requests answered 200 through drops + a worker kill"

  sleep 1 # give the prober a few rounds to eject the corpse
  METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics")
  echo "$METRICS" | grep -q "eliterouter_worker_up{worker=\"127.0.0.1:$W1\"} 0"
  echo "$METRICS" | grep -q "eliterouter_worker_up{worker=\"127.0.0.1:$W2\"} 1"
  echo "$METRICS" | grep -q "eliterouter_workers_available 1"
  echo "worker_up: dead worker ejected, survivor carrying the fleet"
  echo "$METRICS" | grep -E 'eliterouter_(retries|failovers)_total [1-9]' >/dev/null
  echo "failover counters engaged"

  # The degradation ladder must also be visible as span events: the
  # injected drops + the kill force retries and trip worker 1's breaker,
  # and /debug/traces tells that story per request.
  TRACES=$(curl -sf "http://127.0.0.1:$PORT/debug/traces")
  echo "$TRACES" | grep -q '"retry"'
  echo "$TRACES" | grep -q '"breaker.open"'
  echo "span events: retry + breaker.open visible in /debug/traces"
  echo "fleet rehearsal: OK"
  exit 0
fi

echo "== degraded serving rehearsal =="
go build -o "$TMP/eliteanalyze" ./cmd/eliteanalyze

"$TMP/eliteserve" -addr "127.0.0.1:$PORT" -data "demo=$TMP/ds" \
  -cache "$TMP/cache" -async-after 0 \
  -faults 'stage:degree=error' 2>"$TMP/serve.err" &
PIDS="$PIDS $!"
wait_healthz "$PORT"

curl -sf "http://127.0.0.1:$PORT/v1/datasets/demo/report?format=text" \
  -D "$TMP/headers" -o "$TMP/degraded.out"
grep -q 'DEGRADED REPORT' "$TMP/degraded.out"
grep -qi '^Warning: 199' "$TMP/headers"
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q 'eliteserve_degraded_total 1'
echo "degraded response: banner + Warning header + metric OK"

# The injected stage fault must be visible as a span event on the
# degree stage's span in the worker's trace buffer.
curl -sf "http://127.0.0.1:$PORT/debug/traces" | grep -q '"fault.injected"'
echo "span events: fault.injected visible in /debug/traces"

curl -sf "http://127.0.0.1:$PORT/v1/datasets/demo/report?format=text" -o "$TMP/clean.out"
"$TMP/eliteanalyze" -data "$TMP/ds" >"$TMP/analyze.out"
cmp "$TMP/clean.out" "$TMP/analyze.out"
echo "post-fault clean body: byte-identical to eliteanalyze"
echo "chaos rehearsal: OK"
