#!/bin/sh
# check_md_links.sh — sanity-check relative links in the repo's Markdown:
# every non-URL, non-anchor link target must exist on disk, relative to the
# file that references it. Run from the repo root.
set -eu

fail=0
for md in $(find . -name '*.md' ! -path './.git/*'); do
    base=$(dirname "$md")
    # Inline links: [text](target). Strip any #fragment before testing.
    for target in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//'); do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="$base/${target%%#*}"
        if [ ! -e "$path" ]; then
            echo "broken link in $md: $target"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "markdown links: OK"
