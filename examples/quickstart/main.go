// Quickstart: build a small simulated verified-Twitter platform, run the
// paper's full characterization, and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"elites"
)

func main() {
	// A platform with 3,000 verified users (the paper's real network has
	// 231,246; everything here is scale-calibrated).
	cfg := elites.DefaultPlatformConfig(3000)
	cfg.Seed = 42
	platform, err := elites.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The dataset is the English verified sub-graph with aligned profiles
	// — the artifact the paper's analyses consume.
	dataset, err := elites.DatasetFromPlatform(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d english verified users, %d follow edges\n\n",
		dataset.Graph.NumNodes(), dataset.Graph.NumEdges())

	// One-liners from the analysis toolkit.
	fmt.Printf("reciprocity:    %.3f  (paper: 0.337)\n", elites.Reciprocity(dataset.Graph))
	fmt.Printf("clustering:     %.3f  (paper: 0.158)\n", elites.AverageLocalClustering(dataset.Graph))
	fmt.Printf("assortativity:  %+.3f (paper: -0.04)\n", elites.DegreeAssortativity(dataset.Graph))

	// The full battery: §III summary through §V activity analysis.
	activity := platform.ActivitySeries(platform.EnglishNodes())
	opts := elites.Options{SkipBootstrap: true, Seed: 1} // keep the demo quick
	report, err := elites.NewCharacterizer(opts).Run(dataset, activity)
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
}
