// Bios: reproduce the paper's §IV-E bio analysis — Tables I and II (most
// popular bigrams and trigrams in verified-user biographies) and the
// Figure 4 unigram word cloud — over a synthesized bio corpus.
//
//	go run ./examples/bios
package main

import (
	"fmt"
	"log"

	"elites"
	"elites/internal/text"
)

func main() {
	platform, err := elites.NewPlatform(elites.DefaultPlatformConfig(10000))
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := elites.DatasetFromPlatform(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzing %d english verified bios\n", len(dataset.Profiles))

	uni := text.NewCounter(1)
	big := text.NewCounter(2)
	tri := text.NewCounter(3)
	for _, bio := range dataset.Bios() {
		toks := text.Tokenize(bio)
		uni.Add(toks)
		big.Add(toks)
		tri.Add(toks)
	}

	fmt.Println("\nTable I: most popular bigrams (paper: 'Official Twitter' 12166, ...)")
	fmt.Printf("  %-32s %s\n", "Bigram", "Occurrences")
	for _, g := range big.Top(15) {
		fmt.Printf("  %-32s %d\n", g.Phrase(), g.Count)
	}

	fmt.Println("\nTable II: most popular trigrams (paper: 'Official Twitter Account' 5457, ...)")
	fmt.Printf("  %-32s %s\n", "Trigram", "Occurrences")
	for _, g := range tri.Top(15) {
		fmt.Printf("  %-32s %d\n", g.Phrase(), g.Count)
	}

	fmt.Println("\nFigure 4: word cloud of most frequent unigrams")
	fmt.Print(text.RenderASCII(text.BuildCloud(uni.Top(30)), 72))
}
