// Activity: reproduce the paper's §V analysis on the simulated Firehose —
// the Figure 6 calendar heatmap, Ljung–Box and Box–Pierce portmanteau tests
// up to lag 185, the Augmented Dickey–Fuller stationarity verdict, and the
// PELT penalty sweep that isolates the Christmas and April change-points.
//
//	go run ./examples/activity
package main

import (
	"fmt"
	"log"

	"elites"
)

func main() {
	// The canonical instance (the §V verdicts are properties of one
	// 366-point realization; this configuration is the one the test
	// suite and EXPERIMENTS.md pin down).
	cfg := elites.DefaultPlatformConfig(3000)
	cfg.Seed = 42
	platform, err := elites.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}
	series := platform.ActivitySeries(platform.EnglishNodes())
	fmt.Printf("aggregate tweet activity of %d english verified users over %d days\n\n",
		len(platform.EnglishNodes()), series.Len())

	// Portmanteau tests (paper: max p ≈ 3.8e-38 — decisive rejection of
	// "no autocorrelation" at every horizon).
	lb, err := elites.LjungBox(series.Values, 185)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := elites.BoxPierce(series.Values, 185)
	if err != nil {
		log.Fatal(err)
	}
	maxLB, maxBP := 0.0, 0.0
	for i := range lb {
		if lb[i].PValue > maxLB {
			maxLB = lb[i].PValue
		}
		if bp[i].PValue > maxBP {
			maxBP = bp[i].PValue
		}
	}
	fmt.Printf("Ljung–Box  max p over 185 horizons: %.3g\n", maxLB)
	fmt.Printf("Box–Pierce max p over 185 horizons: %.3g\n", maxBP)

	// Stationarity (paper: −3.86 vs critical −3.42).
	adf, err := elites.ADF(series.Values, elites.RegConstantTrend, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADF statistic %.2f vs 5%% critical %.2f (lags %d) → stationary: %v\n",
		adf.Statistic, adf.Crit5, adf.Lags, adf.Stationary())

	// Change-points via the paper's penalty-cooling protocol.
	fmt.Println("\nPELT penalty sweep (index → date, stability):")
	for i, c := range elites.PenaltySweep(series.Values, 10, 400, 12, 7, 6) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s  stability %.2f\n",
			series.Date(c.Index).Format("2006-01-02"), c.Stability)
	}

	fmt.Println("\nFigure 6 calendar heatmap:")
	fmt.Print(series.CalendarMap())
}
