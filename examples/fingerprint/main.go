// Fingerprint: generate the calibrated verified-like network and the
// generic-Twittersphere reference, measure both structural signatures, and
// print the contrast table — the heart of the paper's findings (higher
// reciprocity, power-law out-degrees, shorter paths, slight dissortativity),
// plus the "verified-likeness" score the conclusion sketches as future work.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"log"
	"os"

	"elites"
)

func main() {
	const n = 8000
	verified, err := elites.GenerateVerified(n, 1)
	if err != nil {
		log.Fatal(err)
	}
	generic, err := elites.GenerateTwitter(n, 2)
	if err != nil {
		log.Fatal(err)
	}

	rng := elites.NewRNG(7)
	fmt.Printf("measuring fingerprints of two %d-node networks...\n\n", n)
	fpVerified := elites.ComputeFingerprint(verified.Graph, 25, rng)
	fpGeneric := elites.ComputeFingerprint(generic.Graph, 25, rng)

	elites.CompareFingerprints(os.Stdout,
		[2]string{"verified-like", "generic"},
		[2]elites.Fingerprint{fpVerified, fpGeneric})

	fmt.Println()
	// Classic baselines, scored against the verified signature.
	for _, b := range []struct {
		name string
		g    *elites.Digraph
	}{
		{"erdos-renyi", elites.ErdosRenyi(n, 0.004, 3)},
		{"barabasi-albert", elites.BarabasiAlbert(n, 16, 0.25, 4)},
		{"watts-strogatz", elites.WattsStrogatz(n, 16, 0.1, 5)},
	} {
		fp := elites.ComputeFingerprint(b.g, 0, rng)
		fmt.Printf("verified-likeness of %-16s %.3f\n", b.name+":", fp.VerifiedLikeness())
	}
}
