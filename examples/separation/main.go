// Separation: the whitelisting idea from the paper's related work
// (Hentschel et al.: "most non-verified users on Twitter are within 7
// degrees of separation of a verified user; spam handles sit 7–10 degrees
// out"). We measure how much of the verified network each account can reach
// within k hops, and rank accounts by personalized PageRank from the
// celebrity core — the machinery a verification-triage tool would use.
//
//	go run ./examples/separation
package main

import (
	"fmt"
	"log"
	"sort"

	"elites"
	"elites/internal/centrality"
	"elites/internal/graph"
)

func main() {
	res, err := elites.GenerateVerified(6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph

	// Hop coverage: from a typical (median out-degree) account, how much
	// of the network is within k hops?
	deg := g.OutDegrees()
	type nd struct{ node, d int }
	var nodes []nd
	for v, d := range deg {
		if d > 0 {
			nodes = append(nodes, nd{v, d})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].d < nodes[j].d })
	median := nodes[len(nodes)/2].node

	fmt.Printf("hop coverage from a median-degree account (out-degree %d):\n", deg[median])
	counts := graph.DegreesWithinK(g, median, 7)
	cum := 0
	for k, c := range counts {
		cum += c
		fmt.Printf("  within %d hops: %6d accounts (%.1f%% of network)\n",
			k, cum, 100*float64(cum)/float64(g.NumNodes()))
	}

	// Personalized PageRank from the celebrity core: which accounts are
	// structurally closest to the "elites"?
	var seeds []int
	for v, role := range res.Roles {
		if role.String() == "celebrity-sink" {
			seeds = append(seeds, v)
		}
	}
	if len(seeds) == 0 {
		// Fall back to the top in-degree accounts.
		in := g.InDegrees()
		best := 0
		for v := range in {
			if in[v] > in[best] {
				best = v
			}
		}
		seeds = []int{best}
	}
	// Walk from the core over reversed edges: "who is followed-close to
	// the celebrities".
	ppr, err := centrality.PersonalizedPageRank(g.Reverse(), seeds, nil)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		node  int
		score float64
	}
	var ranked []scored
	for v, s := range ppr {
		ranked = append(ranked, scored{v, s})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	fmt.Printf("\ntop-10 accounts by personalized PageRank from the celebrity core:\n")
	in := g.InDegrees()
	for i := 0; i < 10 && i < len(ranked); i++ {
		r := ranked[i]
		fmt.Printf("  node %5d  score %.5f  in-degree %5d  role %s\n",
			r.node, r.score, in[r.node], res.Roles[r.node])
	}
}
