// Crawl: run the paper's §III data-acquisition pipeline against the
// simulated REST API, showing cursor pagination, the 15-request/15-minute
// rate windows (paid on a virtual clock), the English filter, and the
// equality of the crawled graph with the platform's ground truth.
//
//	go run ./examples/crawl
package main

import (
	"fmt"
	"log"
	"time"

	"elites"
)

func main() {
	cfg := elites.DefaultPlatformConfig(2500)
	cfg.Seed = 7
	platform, err := elites.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}
	api := elites.NewAPI(platform)

	wall := time.Now()
	dataset, err := elites.Crawl(api)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("crawl pipeline (paper §III):")
	fmt.Printf("  1. @verified friends enumerated:  %d ids\n", dataset.TotalVerified)
	fmt.Printf("  2. profiles fetched, 3. english:  %d kept (%.1f%%)\n",
		len(dataset.Profiles),
		100*float64(len(dataset.Profiles))/float64(dataset.TotalVerified))
	fmt.Printf("  4+5. verified-only sub-graph:     %d nodes, %d edges\n",
		dataset.Graph.NumNodes(), dataset.Graph.NumEdges())
	fmt.Println()
	fmt.Printf("API calls:                %d\n", dataset.APICalls)
	fmt.Printf("friends/ids throttles:    %d\n", dataset.FriendsThrottle)
	fmt.Printf("simulated crawl duration: %v (wall: %v)\n",
		dataset.SimulatedTime.Round(time.Minute), time.Since(wall).Round(time.Millisecond))

	// The crawler's output must equal the platform's ground truth.
	truth, err := elites.DatasetFromPlatform(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground truth check: crawled %d edges, platform holds %d → match: %v\n",
		dataset.Graph.NumEdges(), truth.Graph.NumEdges(),
		dataset.Graph.NumEdges() == truth.Graph.NumEdges())
}
