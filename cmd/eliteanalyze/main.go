// Command eliteanalyze runs the paper's full characterization battery over a
// dataset and prints every table and figure in the paper's order: the §III
// dataset summary, §IV-A basic analysis, Figure 1 metric distributions,
// Figure 2 / §IV-B power-law inference with Vuong tests, §IV-C reciprocity,
// Figure 3 degrees of separation, Tables I–II and the Figure 4 word cloud,
// Figure 5 centrality correlations with GAM splines, and the §V activity
// analysis with the Figure 6 calendar heatmap.
//
// The analyses execute as a concurrent stage graph; -parallel bounds the
// stage pool (single stages may still shard internally across cores),
// -stages runs a named subset (plus dependencies), and -timings appends a
// per-stage wall-clock table after the report. Reports are bit-identical at
// any -parallel value for a given seed.
//
// -cache enables the content-addressed per-stage result cache rooted at the
// given directory: re-runs over an unchanged dataset and options hydrate
// the expensive stages (betweenness, bootstraps, distance sweeps) from disk
// instead of recomputing them, printing the same report byte for byte. A
// one-line hit/miss summary goes to stderr (stdout carries only the
// report); -no-cache bypasses a configured cache.
//
// -cpuprofile and -memprofile write pprof profiles of the run (CPU over the
// whole analysis, heap at exit after a final GC), so performance work can
// attach evidence instead of guessing:
//
//	eliteanalyze -n 20000 -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
//
// -features runs only the per-user feature-matrix stage and prints the
// feature rows + scorer verdicts for the given comma-separated out-degree
// ranks as JSON (the same body eliteserve's users:batch endpoint returns,
// byte for byte, for the same dataset and seed) instead of the report.
//
// -trace-out appends the run's span tree — a root "analyze" span with one
// child per pipeline stage, carrying cache-hit and retry attributes — as
// JSON lines to the given file (scripts/traceview.sh pretty-prints it),
// and -timings then includes the trace id so CLI runs can be correlated
// with served traces. -log-format selects text or json structured logs.
// Without -trace-out no tracer exists and the report, stderr and timings
// output are byte-identical to previous releases.
//
// Usage:
//
//	eliteanalyze -data ./dataset          # analyze a saved dataset
//	eliteanalyze -n 10000 -seed 42       # generate in memory and analyze
//	eliteanalyze -n 10000 -fast          # skip the slow analyses
//	eliteanalyze -parallel 1 -timings    # one stage at a time, with clocks
//	eliteanalyze -stages summary,degree  # just those stages (and deps)
//	eliteanalyze -cache ~/.elites-cache  # warm re-runs skip heavy stages
//	eliteanalyze -features 1,2,3         # per-user feature rows as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"elites"
	"elites/internal/plot"
	"elites/internal/twitter"
)

func main() {
	var (
		data       = flag.String("data", "", "dataset directory (from elitegen/elitecrawl)")
		n          = flag.Int("n", 10000, "users to generate when -data is not given")
		seed       = flag.Uint64("seed", 42, "seed for in-memory generation")
		fast       = flag.Bool("fast", false, "skip eigenvalues, betweenness and bootstraps")
		figdir     = flag.String("figdir", "", "directory to write the paper's figures as SVG")
		parallel   = flag.Int("parallel", 0, "max concurrent analysis stages (0 = all cores, 1 = one stage at a time)")
		stagesF    = flag.String("stages", "", "comma-separated stage subset, e.g. summary,degree (available: "+strings.Join(elites.StageNames(), ",")+")")
		timings    = flag.Bool("timings", false, "print a per-stage wall-clock table after the report")
		cacheDir   = flag.String("cache", "", "directory for the per-stage result cache (warm re-runs skip the heavy stages)")
		noCache    = flag.Bool("no-cache", false, "bypass the result cache even when -cache is set")
		cacheMem   = flag.Int64("cache-mem", 0, "in-memory cache tier cap in bytes (0 = default 256 MiB); evictions show in the stderr cache summary")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
		featuresF  = flag.String("features", "", "comma-separated out-degree ranks, e.g. 1,2,3: run only the feature-matrix stage and print those users' feature rows as JSON instead of the report")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		traceOut   = flag.String("trace-out", "", "append the run's spans as JSON lines to this file (enables tracing)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eliteanalyze:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "eliteanalyze:", err)
			os.Exit(1)
		}
	}
	err := run(*data, *n, *seed, *fast, *figdir, *parallel, *stagesF, *timings, *cacheDir, *noCache, *cacheMem, *featuresF, *logFormat, *traceOut)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr == nil {
			runtime.GC() // settle live objects so the heap profile is current
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if merr != nil {
			fmt.Fprintln(os.Stderr, "eliteanalyze: memprofile:", merr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eliteanalyze:", err)
		os.Exit(1)
	}
}

func run(data string, n int, seed uint64, fast bool, figdir string, parallel int, stagesF string, timings bool, cacheDir string, noCache bool, cacheMem int64, featuresF, logFormat, traceOut string) error {
	logger, err := elites.NewObsLogger(logFormat, os.Stderr)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	// Tracing is opt-in for the CLI: without -trace-out there is no tracer,
	// no span ids are drawn from the RNG, and all output stays byte-stable.
	var tracer *elites.Tracer
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		tracer = elites.NewTracer(elites.TracerConfig{Name: "eliteanalyze", Seed: seed, Sink: f})
	}
	var (
		ds       *elites.Dataset
		activity *elites.DailySeries
	)
	if data != "" {
		var err error
		ds, activity, _, err = elites.LoadDataset(data)
		if err != nil {
			return err
		}
	} else {
		cfg := elites.DefaultPlatformConfig(n)
		cfg.Seed = seed
		p, err := elites.NewPlatform(cfg)
		if err != nil {
			return err
		}
		ds, err = elites.DatasetFromPlatform(p)
		if err != nil {
			return err
		}
		activity = p.ActivitySeries(p.EnglishNodes())
	}
	opts := elites.Options{
		Seed: seed, Parallelism: parallel, Timings: timings,
		CacheDir: cacheDir, NoCache: noCache, CacheMemBytes: cacheMem,
	}
	if fast {
		opts.SkipEigen = true
		opts.SkipBetweenness = true
		opts.SkipBootstrap = true
		opts.DistanceSources = 100
	}
	if stagesF != "" {
		for _, s := range strings.Split(stagesF, ",") {
			if s = strings.TrimSpace(s); s != "" {
				opts.Stages = append(opts.Stages, s)
			}
		}
	}
	ctx := context.Background()
	var root *elites.Span
	traceID := ""
	if tracer != nil {
		root = tracer.Root("analyze")
		ctx = elites.ContextWithSpan(ctx, root)
		traceID = root.TraceID().String()
	}
	if featuresF != "" {
		err := runFeatures(ctx, ds, activity, opts, featuresF)
		root.End()
		return err
	}
	rep, err := elites.NewCharacterizer(opts).RunContext(ctx, ds, activity)
	root.End()
	if err != nil {
		return err
	}
	if tracer != nil {
		logger.Info("analysis complete", "trace", traceID, "stages", len(rep.Timings))
	}
	rep.Render(os.Stdout)
	if rep.Cache != nil {
		// Stderr, so stdout stays byte-comparable between cold and warm
		// runs (the CI smoke test relies on this).
		fmt.Fprintf(os.Stderr, "eliteanalyze: cache %s: hits=%d %v misses=%d %v evictions=%d\n",
			rep.Cache.Dir, len(rep.Cache.Hits), rep.Cache.Hits,
			len(rep.Cache.Misses), rep.Cache.Misses, rep.Cache.Evictions)
	}
	if timings {
		renderTimings(os.Stdout, rep.Timings, traceID)
	}
	if figdir != "" {
		if err := writeFigures(figdir, ds, rep, activity); err != nil {
			return err
		}
		fmt.Printf("\nfigures written to %s\n", figdir)
	}
	return nil
}

// runFeatures is the -features path: run only the feature-matrix stage and
// print the requested ranks' rows as a users:batch-shaped JSON body. The
// output is byte-identical to eliteserve's users:batch response for the
// same dataset, seed and ranks — the CI serve smoke cmp's the two.
func runFeatures(ctx context.Context, ds *elites.Dataset, activity *elites.DailySeries, opts elites.Options, ranksF string) error {
	var ranks []int
	for _, s := range strings.Split(ranksF, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		r, err := strconv.Atoi(s)
		if err != nil || r < 1 {
			return fmt.Errorf("-features: ranks must be positive integers, got %q", s)
		}
		ranks = append(ranks, r)
	}
	if len(ranks) == 0 {
		return fmt.Errorf("-features: no ranks given")
	}
	byRank := elites.RankByOutDegree(ds.Graph)
	for _, r := range ranks {
		if r > len(byRank) {
			return fmt.Errorf("-features: rank %d out of range (dataset has %d users)", r, len(byRank))
		}
	}
	opts.Stages = []string{elites.StageFeatures}
	rep, err := elites.NewCharacterizer(opts).RunContext(ctx, ds, activity)
	if err != nil {
		return err
	}
	m := rep.Features
	view := elites.UsersBatchView{Users: make([]elites.UserFeaturesView, len(ranks))}
	for i, r := range ranks {
		node := int(byRank[r-1])
		view.Users[i] = elites.NewUserFeaturesView(r, node, m.Row(node), m.ProbsRow(node), m.ClassOf(node))
	}
	b, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(append(b, '\n'))
	if rep.Cache != nil {
		fmt.Fprintf(os.Stderr, "eliteanalyze: cache %s: hits=%d %v misses=%d %v evictions=%d\n",
			rep.Cache.Dir, len(rep.Cache.Hits), rep.Cache.Hits,
			len(rep.Cache.Misses), rep.Cache.Misses, rep.Cache.Evictions)
	}
	return nil
}

// renderTimings prints the per-stage wall-clock table. Stages are listed in
// execution-graph order; the total is the sum of stage clocks — the run's
// wall clock is lower whenever stages overlapped, and CPU time is higher
// whenever a stage sharded its inner loop across workers. When tracing is
// active (-trace-out) the table ends with the run's trace id, so the table
// can be correlated with the span tree in the JSONL sink.
func renderTimings(w io.Writer, timings []elites.StageTiming, traceID string) {
	if len(timings) == 0 {
		return
	}
	fmt.Fprintf(w, "\nPipeline stage timings\n======================\n")
	var total float64
	for _, tm := range timings {
		ms := float64(tm.Duration.Microseconds()) / 1000
		marker := ""
		if tm.CacheHit {
			marker = "  (cached)"
		}
		fmt.Fprintf(w, "%-14s %12.3fms%s\n", tm.Name, ms, marker)
		total += ms
	}
	fmt.Fprintf(w, "%-14s %12.3fms\n", "stage-wall sum", total)
	if traceID != "" {
		fmt.Fprintf(w, "trace %s\n", traceID)
	}
}

// writeFigures renders every paper figure as an SVG file.
func writeFigures(dir string, ds *elites.Dataset, rep *elites.Report, activity *elites.DailySeries) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	// Figure 1 panels.
	for i, m := range []elites.Metric{
		twitter.MetricFriends, twitter.MetricFollowers,
		twitter.MetricListed, twitter.MetricStatuses,
	} {
		h := rep.MetricHists[m.String()]
		if h == nil {
			continue
		}
		name := fmt.Sprintf("figure1%c.svg", 'a'+i)
		title := fmt.Sprintf("Figure 1(%c): users vs %s", 'a'+i, m)
		if err := save(name, func(f *os.File) error {
			return plot.LogHistogram(f, h, title, m.String())
		}); err != nil {
			return err
		}
	}
	// Figure 2.
	if rep.Degree != nil && rep.Degree.Fit != nil {
		fit := rep.Degree.Fit
		if err := save("figure2.svg", func(f *os.File) error {
			return plot.FrequencySeries(f, rep.DegreeSeries, fit.Alpha, fit.Xmin,
				"Figure 2: proportion of users vs out-degree")
		}); err != nil {
			return err
		}
	}
	// Figure 3.
	if rep.Distances != nil {
		if err := save("figure3.svg", func(f *os.File) error {
			return plot.DistanceHistogram(f, rep.Distances.Counts,
				"Figure 3: node pairs vs degrees of separation")
		}); err != nil {
			return err
		}
	}
	// Figure 5: the PageRank panels (x data recomputed here; betweenness
	// panels would need the sampled scores, which the report does not
	// retain).
	followers := ds.MetricValues(twitter.MetricFollowers)
	listed := ds.MetricValues(twitter.MetricListed)
	pr, err := elites.PageRank(ds.Graph, nil)
	if err == nil {
		for _, p := range rep.Centrality {
			if p.Label == "follower count vs pagerank" {
				if err := save("figure5d.svg", func(f *os.File) error {
					return plot.ScatterSpline(f, pr, followers, p.Curve,
						"Figure 5(d): follower count vs PageRank", "pagerank", "followers")
				}); err != nil {
					return err
				}
			}
			if p.Label == "list memberships vs pagerank" {
				if err := save("figure5c.svg", func(f *os.File) error {
					return plot.ScatterSpline(f, pr, listed, p.Curve,
						"Figure 5(c): list memberships vs PageRank", "pagerank", "list memberships")
				}); err != nil {
					return err
				}
			}
		}
	}
	// Figure 6.
	if activity != nil {
		if err := save("figure6.svg", func(f *os.File) error {
			return plot.Calendar(f, activity, "Figure 6: verified user tweet activity")
		}); err != nil {
			return err
		}
	}
	return nil
}
