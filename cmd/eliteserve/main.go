// Command eliteserve serves the characterization engine over HTTP: it
// registers datasets (saved dataset directories and/or elitegen-style
// generation specs), then answers report queries through the coalescing,
// cache-backed serving layer in internal/serve.
//
// Endpoints (see docs/ARCHITECTURE.md "The serving layer" and the README
// endpoints table):
//
//	GET  /healthz                              liveness + dataset count (503 while draining)
//	GET  /readyz                               readiness (503 while draining)
//	POST /v1/admin/drain                       stop admitting new pipeline work
//	GET  /metrics                              Prometheus text metrics
//	GET  /v1/datasets                          registered datasets
//	GET  /v1/datasets/{id}                     one dataset's summary row
//	GET|POST /v1/datasets/{id}/report          full battery (?stages=, ?format=json|text)
//	GET  /v1/datasets/{id}/stages/{stage}      one stage's result fragment
//	GET  /v1/datasets/{id}/users/{rank}        per-user metrics by out-degree rank
//	GET  /v1/datasets/{id}/users/{rank}/features   per-user feature row + scorer verdict
//	POST /v1/datasets/{id}/users:batch         batched feature rows ({"ranks":[1,2,3]})
//	GET  /v1/jobs/{id}, /v1/jobs/{id}/result   async job status / result
//	GET  /debug/traces                         recent request span trees as JSON
//
// Every request gets a serve.* span — admission waits, body-cache and
// stage-cache hits, per-stage pipeline timings, retries and recovered
// panics all hang off it — and an incoming traceparent header (as
// injected by eliterouter) continues the caller's trace instead of
// starting a new one. -trace-out appends finished spans as JSON lines
// (scripts/traceview.sh pretty-prints them), -log-format selects text
// or JSON structured logs, and -slow-request dumps the span tree of
// any request over the threshold to the log.
//
// Identical concurrent requests coalesce onto one pipeline run; -cache
// makes warm requests hydrate from the content-addressed result cache (the
// same directory eliteanalyze -cache uses, so reports are byte-identical
// between the two); -async-after bounds how long a cold POST holds the
// connection before detaching into a job; the admission queue sheds
// overload with 429. On SIGINT/SIGTERM the server drains gracefully: new
// pipeline work is refused with 503 + jittered Retry-After, in-flight
// requests and async jobs get -drain-timeout to finish, and jobs still
// running at expiry are reported as abandoned.
//
// Usage:
//
//	elitegen -n 20000 -seed 42 -out ./dataset
//	eliteserve -addr :8080 -data verified=./dataset -cache ~/.elites-cache
//	curl localhost:8080/v1/datasets/verified/report?stages=summary,degree
//
//	eliteserve -gen demo=verified:10000:42        # no directory needed
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"elites"
)

// listFlag collects repeatable -data / -gen flags.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ", ") }

func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		dataFlags listFlag
		genFlags  listFlag
	)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Uint64("seed", 42, "characterization seed (eliteanalyze's default, so served reports match its output)")
		fast       = flag.Bool("fast", false, "skip eigenvalues, betweenness and bootstraps")
		parallel   = flag.Int("parallel", 0, "max concurrent analysis stages per run (0 = all cores)")
		cacheDir   = flag.String("cache", "", "directory for the per-stage result cache (warm requests skip the heavy stages)")
		cacheMem   = flag.Int64("cache-mem", 0, "in-memory cache tier cap in bytes (0 = default 256 MiB)")
		maxConc    = flag.Int("max-concurrent", 2, "pipeline runs executing at once")
		maxQueue   = flag.Int("max-queue", 8, "runs waiting for a slot before requests are shed with 429 (-1 = no queue)")
		asyncAfter = flag.Duration("async-after", 30*time.Second, "latency budget before a cold POST detaches into a job (0 = always synchronous)")
		bodyCache  = flag.Int64("body-cache", 0, "encoded-response-body memo cap in bytes (0 = default 64 MiB, -1 = disable)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests and async jobs before abandoning them")

		// Robustness knobs. -faults is a chaos-testing hook: it injects
		// deterministic failures into the serving path (stage errors/panics,
		// cache I/O errors, ...) so operators can rehearse degraded serving;
		// the ELITES_FAULTS env var is the flagless fallback.
		stageRetries = flag.Int("stage-retries", 0, "re-run a failed (non-panicking) stage up to this many times before degrading the report")
		faultSpec    = flag.String("faults", "", `inject deterministic faults, e.g. "stage:degree=error,cache:read=ioerror:times=all" (testing; overrides $ELITES_FAULTS)`)
		faultSeed    = flag.Uint64("faults-seed", 1, "seed for probabilistic fault rules")

		// Observability knobs (see docs/ARCHITECTURE.md "Observability").
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		traceOut  = flag.String("trace-out", "", "append every finished span as a JSON line to this file")
		slowReq   = flag.Duration("slow-request", 0, "log the full span tree of requests at least this slow (0 = off)")
	)
	flag.Var(&dataFlags, "data", "register a dataset directory as id=path (repeatable)")
	flag.Var(&genFlags, "gen", "register a generated dataset as id=kind:n:seed, kind verified|twitter (repeatable)")
	flag.Parse()

	if err := run(*addr, *seed, *fast, *parallel, *cacheDir, *cacheMem,
		*maxConc, *maxQueue, *asyncAfter, *bodyCache, *drainWait,
		*stageRetries, *faultSpec, *faultSeed,
		*logFormat, *traceOut, *slowReq, dataFlags, genFlags); err != nil {
		fmt.Fprintln(os.Stderr, "eliteserve:", err)
		os.Exit(1)
	}
}

func run(addr string, seed uint64, fast bool, parallel int, cacheDir string, cacheMem int64,
	maxConc, maxQueue int, asyncAfter time.Duration, bodyCache int64, drainWait time.Duration,
	stageRetries int, faultSpec string, faultSeed uint64,
	logFormat, traceOut string, slowReq time.Duration, dataFlags, genFlags []string) error {
	logger, err := elites.NewObsLogger(logFormat, os.Stderr)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	tcfg := elites.TracerConfig{Name: "eliteserve:" + addr, Seed: seed}
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		tcfg.Sink = f
	}
	opts := elites.Options{
		Seed: seed, Parallelism: parallel,
		CacheDir: cacheDir, CacheMemBytes: cacheMem,
		StageRetries: stageRetries,
	}
	if fast {
		opts.SkipEigen = true
		opts.SkipBetweenness = true
		opts.SkipBootstrap = true
		opts.DistanceSources = 100
	}
	if faultSpec == "" {
		faultSpec = os.Getenv("ELITES_FAULTS")
	}
	if faultSpec != "" {
		inj, err := elites.ParseFaults(faultSpec, faultSeed)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		opts.Faults = inj
		fmt.Fprintf(os.Stderr, "eliteserve: FAULT INJECTION ACTIVE (%s)\n", faultSpec)
	}
	srv := elites.NewServer(elites.ServerConfig{
		Options:        opts,
		MaxConcurrent:  maxConc,
		MaxQueue:       maxQueue,
		AsyncAfter:     asyncAfter,
		BodyCacheBytes: bodyCache,
		Tracer:         elites.NewTracer(tcfg),
		Logger:         logger,
		SlowRequest:    slowReq,
	})

	for _, spec := range dataFlags {
		id, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data %q: want id=path", spec)
		}
		if err := srv.RegisterDir(id, path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eliteserve: registered %s from %s\n", id, path)
	}
	for _, spec := range genFlags {
		id, rest, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-gen %q: want id=kind:n:seed", spec)
		}
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return fmt.Errorf("-gen %q: want id=kind:n:seed", spec)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("-gen %q: bad n %q", spec, parts[1])
		}
		gseed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("-gen %q: bad seed %q", spec, parts[2])
		}
		start := time.Now()
		if err := srv.RegisterGenerated(id, parts[0], n, gseed); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eliteserve: generated %s (%s, n=%d, seed=%d) in %v\n",
			id, parts[0], n, gseed, time.Since(start).Round(time.Millisecond))
	}
	if len(srv.DatasetIDs()) == 0 {
		return fmt.Errorf("no datasets registered (use -data id=path and/or -gen id=kind:n:seed)")
	}

	// Slow-loris protection: bound how long a client may dribble headers
	// or a body. WriteTimeout is deliberately unset — cold synchronous
	// reports legitimately stream for minutes; -async-after and the
	// admission queue bound those instead.
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "eliteserve: serving %v on %s\n", srv.DatasetIDs(), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
		// Graceful drain: flip the health surface red and refuse new
		// pipeline work first, so a fleet router fails over before the
		// listener closes; then give in-flight requests and async jobs
		// -drain-timeout to finish.
		fmt.Fprintln(os.Stderr, "eliteserve: draining")
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if abandoned := srv.WaitJobs(ctx); abandoned > 0 {
			fmt.Fprintf(os.Stderr, "eliteserve: drain timeout: %d async job(s) abandoned\n", abandoned)
		}
		fmt.Fprintln(os.Stderr, "eliteserve: shutting down")
		return hs.Shutdown(ctx)
	}
}
