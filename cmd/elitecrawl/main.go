// Command elitecrawl runs the paper's §III data-acquisition pipeline against
// the simulated Twitter REST API: it enumerates the '@verified' handle's
// friends, batch-fetches profiles, keeps English accounts, pages through
// every friend list under 15-request/15-minute rate windows (on a virtual
// clock — no real waiting), induces the verified sub-graph, and reports what
// the crawl would have cost in real time.
//
// Usage:
//
//	elitecrawl -n 5000 -seed 42 -out ./dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"elites"
)

func main() {
	var (
		n    = flag.Int("n", 5000, "number of verified users on the simulated platform")
		seed = flag.Uint64("seed", 42, "platform seed")
		out  = flag.String("out", "", "optional dataset output directory")
	)
	flag.Parse()
	if err := run(*n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "elitecrawl:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, out string) error {
	cfg := elites.DefaultPlatformConfig(n)
	cfg.Seed = seed
	p, err := elites.NewPlatform(cfg)
	if err != nil {
		return err
	}
	api := elites.NewAPI(p)
	wall := time.Now()
	ds, err := elites.Crawl(api)
	if err != nil {
		return err
	}
	fmt.Printf("crawl complete in %v wall time\n", time.Since(wall).Round(time.Millisecond))
	fmt.Printf("  verified accounts enumerated: %d\n", ds.TotalVerified)
	fmt.Printf("  english profiles kept:        %d\n", len(ds.Profiles))
	fmt.Printf("  verified-only edges:          %d\n", ds.Graph.NumEdges())
	fmt.Printf("  API calls:                    %d\n", ds.APICalls)
	fmt.Printf("  friends/ids throttles:        %d\n", ds.FriendsThrottle)
	fmt.Printf("  users/lookup throttles:       %d\n", ds.LookupThrottle)
	fmt.Printf("  simulated crawl duration:     %v\n", ds.SimulatedTime.Round(time.Minute))
	if out != "" {
		activity := p.ActivitySeries(p.EnglishNodes())
		meta := elites.StoreMeta{CreatedAt: time.Now().UTC(), Tool: "elitecrawl", Seed: seed}
		if err := elites.SaveDataset(out, ds, activity, meta); err != nil {
			return err
		}
		fmt.Printf("dataset written to %s\n", out)
	}
	return nil
}
