// Command eliterouter fronts a fleet of eliteserve workers with a
// fault-tolerant coordinator. It rendezvous-hashes each request's cache
// identity (dataset digest, stage subset, format) onto a stable worker
// order — so one replica owns each identity, its single-flight coalescing
// works fleet-wide, and a worker leaving never remaps identities between
// the survivors — and climbs a degradation ladder as failures accumulate:
// budgeted retries with decorrelated-jitter backoff onto the next worker
// in hash order, hedged reads for warm GETs past a latency trigger,
// per-worker circuit breakers, health-probe ejection with probationary
// re-admission, and finally last-known-good cached bodies served with a
// Warning header instead of a 502 when every replica is down.
//
// Endpoints (see docs/ARCHITECTURE.md "The fleet"):
//
//	GET  /healthz          router liveness + available-worker count
//	GET  /metrics          Prometheus text metrics (eliterouter_*)
//	GET  /fleet/workers    per-worker state (health, breaker, counters)
//	GET  /debug/traces     recent request span trees as JSON
//	(everything else)      proxied onto the fleet by identity
//
// Every proxied request gets a root span; retries, hedges, breaker
// trips and degraded serves are span events, and the traceparent header
// injected on each attempt makes the worker's serve and pipeline spans
// part of the same trace (query both /debug/traces with one trace id).
// -trace-out appends every finished span as a JSON line
// (scripts/traceview.sh pretty-prints it); -log-format picks text or
// JSON structured logs; -slow-request logs the full span tree of
// requests over the threshold.
//
// Usage:
//
//	eliteserve -addr :9001 -gen demo=verified:10000:42 -cache /tmp/elites-cache &
//	eliteserve -addr :9002 -gen demo=verified:10000:42 -cache /tmp/elites-cache &
//	eliterouter -addr :8080 -worker 127.0.0.1:9001 -worker 127.0.0.1:9002 \
//	    -cache /tmp/elites-cache
//	curl localhost:8080/v1/datasets/demo/report?stages=summary
//
// Sharing -cache with the workers is what arms degraded serving: the
// router records last-known-good bodies there and serves them verbatim
// when the fleet is unreachable. The -faults flag (or $ELITES_FAULTS)
// injects deterministic network faults — "net:127.0.0.1:9001=drop:times=3",
// latency, 5xx bursts — into probes and proxied attempts for chaos drills.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"elites"
)

// workerFlag collects repeatable -worker flags.
type workerFlag []string

func (l *workerFlag) String() string { return strings.Join(*l, ", ") }

func (l *workerFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var workers workerFlag
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheDir      = flag.String("cache", "", "shared result-cache directory (arms last-known-good degraded serving)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health-probe cadence")
		ejectAfter    = flag.Int("eject-after", 3, "consecutive failed probes before a worker is ejected")
		retries       = flag.Int("retries", 2, "extra attempts on other workers after a failed attempt")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "end-to-end budget for one routed request, across all attempts")
		hedgeAfter    = flag.Duration("hedge-after", 0, "fixed delay before hedging a warm GET (0 = adaptive p95 of recent latencies)")
		faultSpec     = flag.String("faults", "", `inject deterministic network faults, e.g. "net:127.0.0.1:9001=drop:times=3" (testing; overrides $ELITES_FAULTS)`)
		faultSeed     = flag.Uint64("faults-seed", 1, "seed for probabilistic fault rules")
		seed          = flag.Uint64("seed", 42, "seed for backoff, Retry-After jitter and trace ids")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		traceOut      = flag.String("trace-out", "", "append every finished span as a JSON line to this file")
		slowReq       = flag.Duration("slow-request", 0, "log the full span tree of requests at least this slow (0 = off)")
	)
	flag.Var(&workers, "worker", "eliteserve base URL (repeatable; at least one required)")
	flag.Parse()

	if err := run(*addr, *cacheDir, *probeInterval, *ejectAfter, *retries,
		*reqTimeout, *hedgeAfter, *faultSpec, *faultSeed, *seed,
		*logFormat, *traceOut, *slowReq, workers); err != nil {
		fmt.Fprintln(os.Stderr, "eliterouter:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, probeInterval time.Duration, ejectAfter, retries int,
	reqTimeout, hedgeAfter time.Duration, faultSpec string, faultSeed, seed uint64,
	logFormat, traceOut string, slowReq time.Duration, workers []string) error {
	logger, err := elites.NewObsLogger(logFormat, os.Stderr)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	tcfg := elites.TracerConfig{Name: "eliterouter:" + addr, Seed: seed}
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		tcfg.Sink = f
	}
	cfg := elites.RouterConfig{
		Workers:        workers,
		ProbeInterval:  probeInterval,
		EjectAfter:     ejectAfter,
		Retries:        retries,
		RequestTimeout: reqTimeout,
		HedgeAfter:     hedgeAfter,
		CacheDir:       cacheDir,
		Seed:           seed,
		Tracer:         elites.NewTracer(tcfg),
		Logger:         logger,
		SlowRequest:    slowReq,
	}
	if faultSpec == "" {
		faultSpec = os.Getenv("ELITES_FAULTS")
	}
	if faultSpec != "" {
		inj, err := elites.ParseFaults(faultSpec, faultSeed)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		cfg.Faults = inj
		fmt.Fprintf(os.Stderr, "eliterouter: FAULT INJECTION ACTIVE (%s)\n", faultSpec)
	}
	router, err := elites.NewRouter(cfg)
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	// Slow-loris protection; no WriteTimeout because proxied cold reports
	// can legitimately take minutes (the per-request -request-timeout
	// bounds them instead).
	hs := &http.Server{
		Addr:              addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "eliterouter: fronting %d worker(s) on %s\n", len(workers), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "eliterouter: shutting down")
		router.Close()
		return hs.Close()
	}
}
