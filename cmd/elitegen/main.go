// Command elitegen generates a synthetic verified-Twitter dataset — follow
// graph, profiles and the one-year activity series — and persists it as a
// dataset directory consumable by eliteanalyze.
//
// Usage:
//
//	elitegen -n 20000 -seed 42 -out ./dataset
//	elitegen -kind twitter -n 20000 -out ./generic   # generic-Twittersphere reference
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"elites"
)

func main() {
	var (
		n    = flag.Int("n", 20000, "number of verified users")
		seed = flag.Uint64("seed", 42, "generation seed")
		out  = flag.String("out", "dataset", "output directory")
		kind = flag.String("kind", "verified", "graph kind: verified | twitter")
	)
	flag.Parse()
	if err := run(*n, *seed, *out, *kind); err != nil {
		fmt.Fprintln(os.Stderr, "elitegen:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, out, kind string) error {
	cfg := elites.DefaultPlatformConfig(n)
	cfg.Seed = seed
	switch kind {
	case "verified":
		// default GraphConfig
	case "twitter":
		g := elites.TwitterDefaults(n)
		g.Seed = seed
		cfg.GraphConfig = g
	default:
		return fmt.Errorf("unknown -kind %q (want verified or twitter)", kind)
	}
	start := time.Now()
	p, err := elites.NewPlatform(cfg)
	if err != nil {
		return err
	}
	ds, err := elites.DatasetFromPlatform(p)
	if err != nil {
		return err
	}
	activity := p.ActivitySeries(p.EnglishNodes())
	fmt.Printf("generated %d verified users (%d english), %d edges in %v\n",
		p.NumVerified(), ds.Graph.NumNodes(), ds.Graph.NumEdges(),
		time.Since(start).Round(time.Millisecond))
	meta := elites.StoreMeta{
		CreatedAt: time.Now().UTC(),
		Tool:      "elitegen -kind " + kind,
		Seed:      seed,
	}
	if err := elites.SaveDataset(out, ds, activity, meta); err != nil {
		return err
	}
	fmt.Printf("dataset written to %s\n", out)
	return nil
}
