// Package elites is a from-scratch Go reproduction of "Elites Tweet?
// Characterizing the Twitter Verified User Network" (Paul et al., ICDE
// 2019). It bundles, behind one documented API:
//
//   - calibrated synthetic generators for the Twitter verified-user network
//     and the generic Twittersphere reference (the July-2018 crawl the paper
//     used is unobtainable; see DESIGN.md for the substitution argument);
//   - a simulated Twitter platform — profiles with bios, a REST API with
//     cursor pagination and 15-minute rate windows on a virtual clock, a
//     Firehose of daily statistics — plus the paper's §III crawl pipeline;
//   - the full analysis battery: CSR graph algorithms (SCC/WCC, attracting
//     components, reciprocity, clustering, assortativity, BFS distance
//     distributions), centrality (PageRank, Brandes betweenness, HITS),
//     Lanczos eigenvalues, Clauset–Shalizi–Newman power-law inference with
//     Vuong tests, bio n-gram tables, P-spline GAM correlations, and the
//     §V time-series suite (Ljung–Box, Box–Pierce, ADF, PELT);
//   - a Characterizer that runs everything as a concurrent analysis stage
//     graph — independent stages execute in parallel on a bounded pool, the
//     hottest stages (Brandes betweenness, the goodness-of-fit bootstrap,
//     graph metrics, BFS distance sweeps) additionally shard their inner
//     loops over a shared process-wide worker pool, and per-stage derived
//     RNG streams plus ordered reductions keep reports bit-identical at any
//     parallelism — and renders each of the paper's tables and figures.
//     With Options.CacheDir set, the expensive stages are served from a
//     content-addressed result cache on re-runs (Report.Cache reports the
//     traffic), rendering byte-identically to a cold run.
//   - an embeddable HTTP serving layer (NewServer; cmd/eliteserve wraps
//     it) that answers report/stage/per-user queries as JSON or rendered
//     text, coalesces identical concurrent requests onto one pipeline
//     run, cancels runs every client abandoned, sheds overload with 429,
//     detaches slow cold runs into pollable jobs, and exposes
//     Prometheus-style metrics.
//
// The execution model (stage graph, determinism contract, shared worker
// cap) is documented in docs/ARCHITECTURE.md.
//
// # Quick start
//
//	p, _ := elites.NewPlatform(elites.DefaultPlatformConfig(5000))
//	ds, _ := elites.DatasetFromPlatform(p)
//	rep, _ := elites.NewCharacterizer(elites.Options{}).Run(ds, p.ActivitySeries(p.EnglishNodes()))
//	rep.Render(os.Stdout)
//
// The packages under internal/ hold the implementations; this package
// re-exports the stable surface.
package elites

import (
	"io"

	"elites/internal/centrality"
	"elites/internal/core"
	"elites/internal/faults"
	"elites/internal/features"
	"elites/internal/fleet"
	"elites/internal/gen"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/obs"
	"elites/internal/powerlaw"
	"elites/internal/serve"
	"elites/internal/spectral"
	"elites/internal/stats"
	"elites/internal/store"
	"elites/internal/text"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// Version identifies the library release.
const Version = "1.0.0"

// --- Graphs -----------------------------------------------------------------

// Re-exported graph types.
type (
	// Digraph is an immutable directed graph in CSR form.
	Digraph = graph.Digraph
	// GraphBuilder accumulates edges and freezes them into a Digraph.
	GraphBuilder = graph.Builder
	// DistanceDistribution summarizes pairwise shortest-path lengths.
	DistanceDistribution = graph.DistanceDistribution
	// SCCResult is a strongly-connected-component decomposition.
	SCCResult = graph.SCCResult
	// WCCResult is a weakly-connected-component decomposition.
	WCCResult = graph.WCCResult
)

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Re-exported graph analyses.
var (
	// Reciprocity is the fraction of edges whose reverse also exists.
	Reciprocity = graph.Reciprocity
	// AverageLocalClustering is the mean Watts–Strogatz clustering
	// coefficient of the undirected projection.
	AverageLocalClustering = graph.AverageLocalClustering
	// DegreeAssortativity is the out–in degree correlation across edges.
	DegreeAssortativity = graph.DegreeAssortativity
	// StronglyConnectedComponents runs iterative Tarjan.
	StronglyConnectedComponents = graph.StronglyConnectedComponents
	// WeaklyConnectedComponents runs union-find.
	WeaklyConnectedComponents = graph.WeaklyConnectedComponents
	// AttractingComponents returns the sink SCCs (random-walk traps).
	AttractingComponents = graph.AttractingComponents
	// IsolatedNodes lists nodes with no edges.
	IsolatedNodes = graph.IsolatedNodes
	// ExactDistances runs all-pairs BFS.
	ExactDistances = graph.ExactDistances
	// SampledDistances estimates the distance distribution from k sources.
	SampledDistances = graph.SampledDistances
	// ExactDistancesWorkers and SampledDistancesWorkers take an explicit
	// worker budget (<= 0 means GOMAXPROCS); every budget yields an
	// identical distribution.
	ExactDistancesWorkers   = graph.ExactDistancesWorkers
	SampledDistancesWorkers = graph.SampledDistancesWorkers
	// BFS computes single-source hop distances.
	BFS = graph.BFS
	// KCores computes the k-core decomposition (Batagelj–Zaveršnik).
	KCores = graph.KCores
	// RichClub computes the normalized rich-club curve.
	RichClub = graph.RichClub
	// MutualSubgraph keeps only reciprocated edges.
	MutualSubgraph = graph.MutualSubgraph
	// CoreReciprocity splits reciprocity by core membership (§IV-C).
	CoreReciprocity = graph.CoreReciprocity
)

// --- Generators ---------------------------------------------------------------

// Re-exported generator types.
type (
	// GenConfig parameterizes the social-graph engine.
	GenConfig = gen.Config
	// GenResult is a generated network with roles and degree draws.
	GenResult = gen.Result
	// Role classifies generated nodes (regular / isolated / celebrity sink).
	Role = gen.Role
)

// Generator entry points.
var (
	// VerifiedDefaults is the configuration calibrated to the paper's
	// verified-network fingerprint.
	VerifiedDefaults = gen.VerifiedDefaults
	// TwitterDefaults is the generic-Twittersphere reference configuration.
	TwitterDefaults = gen.TwitterDefaults
	// Generate runs the engine on an arbitrary configuration.
	Generate = gen.Generate
	// GenerateVerified generates the calibrated verified-like network.
	GenerateVerified = gen.Verified
	// GenerateTwitter generates the generic reference network.
	GenerateTwitter = gen.Twitter
	// ErdosRenyi, BarabasiAlbert, WattsStrogatz and ConfigurationModel are
	// the classic baselines.
	ErdosRenyi         = gen.ErdosRenyi
	BarabasiAlbert     = gen.BarabasiAlbert
	WattsStrogatz      = gen.WattsStrogatz
	ConfigurationModel = gen.ConfigurationModel
)

// --- Simulated platform -------------------------------------------------------

// Re-exported platform types.
type (
	// Platform is the simulated Twitter.
	Platform = twitter.Platform
	// PlatformConfig sizes the simulation.
	PlatformConfig = twitter.PlatformConfig
	// Profile is a simulated user record.
	Profile = twitter.Profile
	// API is the rate-limited REST surface.
	API = twitter.API
	// Dataset is the crawl output the analyses consume.
	Dataset = twitter.Dataset
	// Metric selects one of the Figure 1 audience metrics.
	Metric = twitter.Metric
)

// Platform entry points.
var (
	// DefaultPlatformConfig sizes a platform to n verified users.
	DefaultPlatformConfig = twitter.DefaultPlatformConfig
	// NewPlatform builds the simulated platform.
	NewPlatform = twitter.NewPlatform
	// NewAPI wraps a platform with the rate-limited REST API.
	NewAPI = twitter.NewAPI
	// Crawl runs the paper's §III acquisition pipeline against an API.
	Crawl = twitter.Crawl
	// DatasetFromPlatform induces the dataset directly (identical output,
	// no simulated rate-limit cost).
	DatasetFromPlatform = twitter.DatasetFromPlatform
)

// Figure 1 metrics.
const (
	MetricFollowers = twitter.MetricFollowers
	MetricFriends   = twitter.MetricFriends
	MetricListed    = twitter.MetricListed
	MetricStatuses  = twitter.MetricStatuses
)

// --- Characterization ----------------------------------------------------------

// Re-exported pipeline types.
type (
	// Characterizer runs the paper's full analysis battery.
	Characterizer = core.Characterizer
	// Options tunes the pipeline's sampled analyses.
	Options = core.Options
	// Report bundles every analysis output and renders the paper's
	// tables and figures.
	Report = core.Report
	// StageTiming is one pipeline stage's measured wall clock
	// (collected when Options.Timings is set; CacheHit marks stages
	// hydrated from the result cache).
	StageTiming = core.StageTiming
	// CacheReport summarizes result-cache hits and misses for a Run
	// (present on Report.Cache when Options.CacheDir enabled the cache).
	CacheReport = core.CacheReport
	// Fingerprint is the structural signature of a network.
	Fingerprint = core.Fingerprint
	// ReportView is the JSON-safe projection of a Report (NaN-tolerant,
	// deterministic bytes) that the serving layer responds with.
	ReportView = core.ReportView
	// FeatureMatrix is the per-user feature matrix + scorer output
	// (Report.Features when Options.Features opts the stage in).
	FeatureMatrix = features.Matrix
	// FeatureOptions tunes a standalone feature-matrix computation.
	FeatureOptions = features.Options
	// FeatureRows is a contiguous row-range fragment of a feature matrix
	// (what one cached shard decodes into).
	FeatureRows = features.Rows
	// Scorer is the deterministic logistic elite/bot/regular classifier.
	Scorer = features.Scorer
	// UserFeaturesView and UsersBatchView are the JSON projections the
	// per-user feature endpoints respond with.
	UserFeaturesView = core.UserFeaturesView
	UsersBatchView   = core.UsersBatchView
)

// Pipeline entry points.
var (
	// NewCharacterizer builds the pipeline. Stages with no dependency
	// between them run concurrently (Options.Parallelism bounds the pool;
	// Options.Stages selects a subset) and reports are bit-identical at
	// any parallelism thanks to per-stage derived RNG streams.
	NewCharacterizer = core.NewCharacterizer
	// StageNames lists the pipeline's stage vocabulary in canonical order,
	// for Options.Stages selections.
	StageNames = core.StageNames
	// ComputeFingerprint measures a graph's structural signature.
	ComputeFingerprint = core.ComputeFingerprint
	// PaperVerifiedFingerprint is the paper's measured signature.
	PaperVerifiedFingerprint = core.PaperVerifiedFingerprint
	// CompareFingerprints renders a side-by-side contrast table.
	CompareFingerprints = core.CompareFingerprints
	// AnalyzeCategories builds the per-archetype table.
	AnalyzeCategories = core.AnalyzeCategories
	// AnalyzeMutualCore validates the §IV-C core-reciprocity conjecture.
	AnalyzeMutualCore = core.AnalyzeMutualCore
	// NewReportView projects a Report into its JSON view; StageView
	// extracts one stage's fragment.
	NewReportView = core.NewReportView
	StageView     = core.StageView
	// ComputeFeatures builds the per-user feature matrix standalone (the
	// pipeline's features stage calls the same function); DefaultScorer is
	// the process-wide classifier it scores rows with, trained once on the
	// fixed elitegen seed schedule.
	ComputeFeatures = features.Compute
	DefaultScorer   = features.DefaultScorer
	// FeatureNames lists the matrix columns in order; RankByOutDegree is
	// the serving layer's per-user ranking (out-degree desc, node asc).
	FeatureNames    = features.Names
	RankByOutDegree = features.RankByOutDegree
	// NewUserFeaturesView builds one user's JSON feature view from a
	// matrix row.
	NewUserFeaturesView = core.NewUserFeaturesView
)

// StageFeatures names the opt-in feature-matrix pipeline stage (for
// Options.Stages selections).
const StageFeatures = core.StageFeatures

// Scorer classes (FeatureMatrix.Class values).
const (
	ClassElite   = features.ClassElite
	ClassBot     = features.ClassBot
	ClassRegular = features.ClassRegular
)

// --- Serving --------------------------------------------------------------------

// Re-exported serving types (cmd/eliteserve is a thin wrapper over these;
// embed the Server anywhere an http.Handler goes).
type (
	// Server is the HTTP serving layer over the characterization engine:
	// request coalescing, bounded admission, async jobs, /metrics.
	Server = serve.Server
	// ServerConfig tunes a Server.
	ServerConfig = serve.Config
)

// Serving entry points.
var (
	// NewServer builds the HTTP serving layer; register datasets with
	// Server.RegisterDataset / RegisterDir / RegisterGenerated, then mount
	// it as an http.Handler.
	NewServer = serve.New
	// ErrServerBusy is what shed requests fail with (HTTP 429).
	ErrServerBusy = serve.ErrBusy
)

// --- Fleet ----------------------------------------------------------------------

// Re-exported fleet types (cmd/eliterouter is a thin wrapper over these).
type (
	// Router is the fleet coordinator: rendezvous-hashed placement over
	// eliteserve workers with health checking, budgeted retries, hedged
	// reads, per-worker circuit breakers and last-known-good degradation.
	Router = fleet.Router
	// RouterConfig tunes a Router.
	RouterConfig = fleet.Config
)

// NewRouter builds the fleet coordinator; call Start to launch its health
// prober and mount it as an http.Handler.
var NewRouter = fleet.New

// --- Observability ---------------------------------------------------------------

// Re-exported observability types (internal/obs): the tracing, metrics
// and structured-logging layer shared by the router, server and CLI.
type (
	// Tracer records request-scoped span trees (W3C traceparent
	// propagation, /debug/traces ring buffer, JSONL sink).
	Tracer = obs.Tracer
	// TracerConfig configures a Tracer (name, seed, ring size, sink).
	TracerConfig = obs.TracerConfig
	// Span is one timed operation in a trace.
	Span = obs.Span
)

// Observability entry points.
var (
	// NewTracer builds a Tracer; pass it to ServerConfig.Tracer /
	// RouterConfig.Tracer, or drive it directly with Root/StartSpan.
	NewTracer = obs.NewTracer
	// NewObsLogger builds a log/slog logger in "text" or "json" format —
	// the value space of the commands' -log-format flag.
	NewObsLogger = obs.NewLogger
	// ContextWithSpan / SpanFromContext thread spans through call trees;
	// Characterizer.RunContext emits per-stage spans when its context
	// carries one.
	ContextWithSpan = obs.ContextWithSpan
	SpanFromContext = obs.SpanFromContext
	// RenderTree formats one trace's spans as an indented duration tree.
	RenderTree = obs.RenderTree
)

// --- Fault injection -------------------------------------------------------------

// FaultInjector is the deterministic fault-injection layer (Options.Faults):
// seeded, rule-based injection of stage errors, panics, latency, cache I/O
// failures and cancellations, for chaos testing the pipeline and server.
type FaultInjector = faults.Injector

// ParseFaults compiles a fault spec ("point=kind{:key=value},..." — e.g.
// "stage:degree=panic,cache:read=ioerror:times=all") into an injector;
// seed drives probabilistic rules. See internal/faults for the grammar.
var ParseFaults = faults.Parse

// --- Statistics toolkits ---------------------------------------------------------

// Re-exported statistics types.
type (
	// PowerLawFit is a fitted power-law model.
	PowerLawFit = powerlaw.Fit
	// PowerLawOptions configures fitting.
	PowerLawOptions = powerlaw.Options
	// VuongResult is a likelihood-ratio comparison outcome.
	VuongResult = powerlaw.VuongResult
	// GoFResult is a bootstrap goodness-of-fit outcome with full
	// accounting (p-value, exceedances, dropped replicates); returned by
	// PowerLawFit.Bootstrap.
	GoFResult = powerlaw.GoFResult
	// DailySeries is a contiguous daily time series.
	DailySeries = timeseries.DailySeries
	// ADFResult is an Augmented Dickey–Fuller test outcome.
	ADFResult = timeseries.ADFResult
	// Histogram is a binned frequency distribution.
	Histogram = stats.Histogram
	// Spline is a fitted penalized regression spline.
	Spline = stats.Spline
	// NGram is a counted phrase.
	NGram = text.NGram
	// RNG is the deterministic random generator used throughout.
	RNG = mathx.RNG
)

// Statistics entry points.
var (
	// FitPowerLawDiscrete fits integer data (degrees).
	FitPowerLawDiscrete = powerlaw.FitDiscrete
	// FitPowerLawContinuous fits positive real data (eigenvalues).
	FitPowerLawContinuous = powerlaw.FitContinuous
	// LjungBox and BoxPierce are the §V portmanteau tests.
	LjungBox  = timeseries.LjungBox
	BoxPierce = timeseries.BoxPierce
	// ADF is the Augmented Dickey–Fuller test.
	ADF = timeseries.ADF
	// PELT finds change-points; PenaltySweep reproduces the paper's
	// cooling protocol.
	PELT         = timeseries.PELT
	PenaltySweep = timeseries.PenaltySweep
	// KPSS is the stationarity-null complement to ADF.
	KPSS = timeseries.KPSS
	// Decompose performs the additive weekly decomposition.
	Decompose = timeseries.Decompose
	// TopicSensitivePageRank ranks by per-topic influence (TwitterRank).
	TopicSensitivePageRank = centrality.TopicSensitivePageRank
	// DistinctiveTerms finds per-group characteristic vocabulary.
	DistinctiveTerms = text.DistinctiveTerms
	// PageRank and Betweenness are the Figure 5 centralities. The
	// *Workers variants take an explicit worker budget (<= 0 means
	// GOMAXPROCS); every budget yields bit-identical scores.
	PageRank                 = centrality.PageRank
	Betweenness              = centrality.Betweenness
	BetweennessWorkers       = centrality.BetweennessWorkers
	ApproxBetweenness        = centrality.ApproxBetweenness
	ApproxBetweennessWorkers = centrality.ApproxBetweennessWorkers
	// TopLaplacianEigenvalues computes the §IV-B spectrum.
	NewLaplacianOperator  = spectral.NewLaplacianOperator
	TopEigenvaluesLanczos = spectral.TopEigenvaluesLanczos
	// FitSpline fits the Figure 5 GAM smoother.
	FitSpline = stats.FitSpline
	// NewRNG seeds a deterministic generator.
	NewRNG = mathx.NewRNG
)

// ADF regression variants.
const (
	RegNone          = timeseries.RegNone
	RegConstant      = timeseries.RegConstant
	RegConstantTrend = timeseries.RegConstantTrend
)

// --- Persistence -----------------------------------------------------------------

// StoreMeta records dataset provenance on disk.
type StoreMeta = store.Meta

// Persistence entry points.
var (
	// SaveDataset writes a dataset directory (graph, profiles, activity).
	SaveDataset = store.SaveDataset
	// LoadDataset reads a dataset directory.
	LoadDataset = store.LoadDataset
)

// RenderReport writes the full report to w (alias for Report.Render for
// callers holding the interface value).
func RenderReport(w io.Writer, r *Report) { r.Render(w) }
