package elites

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end exactly as README
// documents it — platform → dataset → characterization → render — plus the
// persistence round trip. Implementation details are covered by the
// internal package suites.

func TestPublicAPIQuickstart(t *testing.T) {
	cfg := DefaultPlatformConfig(1500)
	cfg.Seed = 42
	platform, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := DatasetFromPlatform(platform)
	if err != nil {
		t.Fatal(err)
	}
	if dataset.Graph.NumNodes() == 0 || len(dataset.Profiles) != dataset.Graph.NumNodes() {
		t.Fatal("dataset malformed")
	}

	r := Reciprocity(dataset.Graph)
	if r < 0.25 || r > 0.45 {
		t.Fatalf("reciprocity = %v", r)
	}
	if c := AverageLocalClustering(dataset.Graph); c <= 0 {
		t.Fatalf("clustering = %v", c)
	}

	activity := platform.ActivitySeries(platform.EnglishNodes())
	opts := Options{SkipBootstrap: true, SkipEigen: true, SkipBetweenness: true,
		DistanceSources: 50, Seed: 1}
	report, err := NewCharacterizer(opts).Run(dataset, activity)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	report.Render(&sb)
	if !strings.Contains(sb.String(), "Reciprocity") {
		t.Fatal("render incomplete")
	}
	RenderReport(&sb, report) // alias form
}

func TestPublicAPIGenerators(t *testing.T) {
	v, err := GenerateVerified(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := GenerateTwitter(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Reciprocity(v.Graph) <= Reciprocity(tw.Graph) {
		t.Fatal("verified reciprocity must exceed generic")
	}
	if g := ErdosRenyi(100, 0.05, 3); g.NumNodes() != 100 {
		t.Fatal("ER")
	}
	if g := BarabasiAlbert(100, 2, 0.2, 4); g.NumNodes() != 100 {
		t.Fatal("BA")
	}
	if g := WattsStrogatz(100, 4, 0.1, 5); g.NumEdges() == 0 {
		t.Fatal("WS")
	}
}

func TestPublicAPICrawlAndPersist(t *testing.T) {
	cfg := DefaultPlatformConfig(600)
	platform, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Crawl(NewAPI(platform))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	activity := platform.ActivitySeries(platform.EnglishNodes())
	if err := SaveDataset(dir, ds, activity, StoreMeta{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	ds2, act2, meta, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Graph.NumEdges() != ds.Graph.NumEdges() || act2.Len() != activity.Len() {
		t.Fatal("persistence round trip broken")
	}
	if meta.Tool != "test" {
		t.Fatal("meta lost")
	}
}

func TestPublicAPIStatistics(t *testing.T) {
	rng := NewRNG(7)
	// Power law.
	data := make([]int, 3000)
	for i := range data {
		data[i] = int(rng.Pareto(5, 2.8))
	}
	fit, err := FitPowerLawDiscrete(data, &PowerLawOptions{FixedXmin: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.8) > 0.3 {
		t.Fatalf("alpha = %v", fit.Alpha)
	}
	// ADF on a random walk must not reject.
	walk := make([]float64, 300)
	for i := 1; i < len(walk); i++ {
		walk[i] = walk[i-1] + rng.Normal()
	}
	adf, err := ADF(walk, RegConstant, -1)
	if err != nil {
		t.Fatal(err)
	}
	if adf.PValue < 0.01 {
		t.Fatalf("random walk rejected with p=%v", adf.PValue)
	}
	// PELT on planted shift.
	x := make([]float64, 200)
	for i := range x {
		if i >= 100 {
			x[i] = 8
		}
		x[i] += rng.Normal()
	}
	cps := PELT(x, 3*math.Log(200), 5)
	if len(cps) != 1 || cps[0] < 95 || cps[0] > 105 {
		t.Fatalf("cps = %v", cps)
	}
	// Spline.
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 20
		ys[i] = 2 * xs[i]
	}
	sp, err := FitSpline(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Eval(5)-10) > 0.1 {
		t.Fatalf("spline eval = %v", sp.Eval(5))
	}
}

func TestPublicAPIFingerprint(t *testing.T) {
	v, _ := GenerateVerified(2000, 9)
	rng := NewRNG(1)
	fp := ComputeFingerprint(v.Graph, 0, rng)
	if fp.VerifiedLikeness() < 0.6 {
		t.Fatalf("verified graph likeness = %v", fp.VerifiedLikeness())
	}
	if PaperVerifiedFingerprint().VerifiedLikeness() < 0.99 {
		t.Fatal("paper fingerprint must score ~1")
	}
}

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("version empty")
	}
}
